"""The distributed FPSS protocol (plain, trusting variant).

FPSS computes lowest-cost paths and VCG pricing tables "by each node
using information from neighbors in an iterative calculation",
following the Griffin-Wilfong abstract model of BGP.  This module
implements that computation in two layers:

:class:`FPSSComputation`
    A *pure, deterministic* state container holding DATA1-DATA3* and
    the neighbour vectors, with explicit apply/recompute methods and no
    I/O.  Determinism matters beyond tidiness: the faithful extension's
    checker nodes replay a principal's computation on copies of its
    messages, and replay only works if the computation is a pure
    function of (identity, neighbour set, message sequence).

:class:`FPSSNode`
    A :class:`~repro.sim.node.ProtocolNode` driving one computation
    instance: it floods cost declarations (first construction phase)
    and exchanges routing/pricing updates (second construction phase),
    broadcasting whenever its own tables change.

Incremental recomputation
-------------------------
The relaxations are evaluated *incrementally*: applying a neighbour
vector diffs it against the previously stored one and marks only the
destinations (routing) or ``(destination, avoided)`` keys (pricing)
whose inputs actually changed; ``recompute_routes_incremental`` /
``recompute_avoidance_incremental`` / ``derive_pricing_incremental``
then relax exactly those dirty entries.  Because a destination's
candidate set depends only on that destination's rows in the neighbour
vectors (plus the phase-frozen DATA1), the incremental pass is
observably identical — same tables, digests, and change flags — to the
full-table rescan, which is retained (``recompute_routes``,
``recompute_avoidance``, ``derive_pricing``) as the property-tested
reference oracle (``tests/routing/test_incremental_property.py``) and
for phase starts.  If DATA1 *does* change mid-phase (never in an
honest run), the dirty bookkeeping degrades gracefully by marking
everything dirty.

Batched delivery
----------------
Under the simulator's batched delivery mode (the default), all updates
arriving at one node at one instant are applied first — each still
forwarded to checkers per [PRINC1]/[PRINC2] before any recomputation —
and the relaxation plus at most one broadcast per kind runs once at
the batch boundary.  One flooding round then costs each node one
recomputation instead of one per neighbour.  Checker mirrors replay
with the same batch boundaries (copies of one batch share an arrival
instant on the FIFO link), so replay remains exact; see
``docs/architecture.md`` for the invariant.

Distributed pricing
-------------------
The per-packet VCG payment to transit node ``k`` on the LCP from ``i``
to ``j`` is ``p^{ij}_k = c_k + d^{-k}(i,j) - d(i,j)`` where ``d`` is
the LCP cost and ``d^{-k}`` the LCP cost avoiding ``k``.  FPSS computes
the prices iteratively from neighbours' pricing information; here the
exchanged quantity is the table of *avoidance costs* ``d^{-k}(a, j)``,
which carries the identical information (``d^{-k} = p - c_k + d``) and
admits the same Bellman-Ford style relaxation:

    d^{-k}(i, j) = min over neighbours a != k of
                   [ (c_a if a != j else 0) + d^{-k}(a, j) ]

Identity tags (DATA3*)
----------------------
Each pricing entry carries the set of neighbours that *triggered* its
current value — the argmin suppliers in the relaxation above, with
ties unioned — exactly the DATA3* extension of Section 4.3 ("this tag
identifies the node that triggered the most recent FPSS pricing table
update; in the case of a pricing tie, this tag field actually contains
the union of the nodes that suggested the same pricing entry").
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ProtocolError, RoutingError
from ..sim.crypto import stable_hash
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode
from .graph import Cost
from .tables import (
    PaymentList,
    PricingTable,
    RouteEntry,
    RoutingTable,
    TransitCostTable,
)

#: Message kinds used by the two construction phases.
KIND_COST_DECL = "cost-decl"
KIND_RT_UPDATE = "rt-update"
KIND_PRICE_UPDATE = "price-update"
#: Message kind used by the execution phase.
KIND_PACKET = "packet"

RouteVector = Dict[NodeId, RouteEntry]
AvoidKey = Tuple[NodeId, NodeId]  # (destination, avoided node)
AvoidVector = Dict[AvoidKey, RouteEntry]

#: Memoized ``repr`` sort keys for vector encoding.  Vector keys are
#: node ids or (destination, avoided) pairs drawn from a small universe
#: that recurs across every broadcast of a run, while ``repr`` itself
#: builds a fresh string per call — measurable on n^2-row vectors.
_SORT_KEY_MEMO: Dict = {}


def _sort_key(value) -> str:
    key = _SORT_KEY_MEMO.get(value)
    if key is None:
        key = _SORT_KEY_MEMO[value] = repr(value)
    return key


#: Relaxation sentinels: the argmin supplier for the directly-connected
#: base case (whose candidate never changes), and the relax-internal
#: marker for "the current entry is still the winner".
_BASE = object()
_KEEP = object()


@lru_cache(maxsize=65536)
def _lex_key(path: Tuple) -> Tuple[str, ...]:
    """Memoized lexicographic tie-break key of a path.

    Only consulted when two candidates tie on cost *and* hop count,
    which keeps the common relaxation path free of repr calls.
    """
    return tuple(_sort_key(node) for node in path)


def _stripped_worse(cand: Tuple, state: Tuple) -> bool:
    """True if candidate ``cand`` orders strictly after ``state``.

    Both are ``(supplier, cost, hops, path)`` stripped candidates; the
    lexicographic component is materialised only on full ties.
    """
    if cand[1] != state[1]:
        return cand[1] > state[1]
    if cand[2] != state[2]:
        return cand[2] > state[2]
    if cand[3] is state[3]:
        return False
    return _lex_key(cand[3]) > _lex_key(state[3])


def _stripped_equal(cand: Tuple, state: Tuple) -> bool:
    """True if two stripped candidates denote the same table entry."""
    return (
        cand[1] == state[1]
        and cand[2] == state[2]
        and (cand[3] is state[3] or _lex_key(cand[3]) == _lex_key(state[3]))
    )


def _stripped_beats_base(destination, best: Tuple) -> bool:
    """True if the base candidate ``(0.0, 1, (destination,))`` beats
    the current ``best`` stripped candidate."""
    if best[1] != 0.0:
        return best[1] > 0.0
    if best[2] != 1:
        return best[2] > 1
    return (_sort_key(destination),) < _lex_key(best[3])


def delta_size(delta: Sequence[Tuple]) -> int:
    """Scalar count of a delta payload, matching ``Message.size``.

    Each row contributes its scalar fields plus its path length (an
    empty path counts as one scalar, like any empty container); an
    empty delta is one scalar.
    """
    if not delta:
        return 1
    return sum(len(row) - 1 + (len(row[-1]) or 1) for row in delta)


def encode_route_vector(vector: Mapping[NodeId, RouteEntry]) -> Tuple:
    """Wire encoding of a routing vector (repr-sorted, immutable).

    Rows are unique per destination; every decoder and differ below
    relies on that uniqueness.
    """
    return tuple(
        (dest, entry.cost, entry.path)
        for dest, entry in sorted(vector.items(), key=lambda kv: _sort_key(kv[0]))
    )


def decode_route_vector(encoded: Sequence[Tuple]) -> RouteVector:
    """Inverse of :func:`encode_route_vector`."""
    return {
        dest: RouteEntry(cost=cost, path=tuple(path)) for dest, cost, path in encoded
    }


def encode_avoid_vector(vector: Mapping[AvoidKey, RouteEntry]) -> Tuple:
    """Wire encoding of an avoidance-cost vector (repr-sorted)."""
    return tuple(
        (dest, avoided, entry.cost, entry.path)
        for (dest, avoided), entry in sorted(
            vector.items(), key=lambda kv: _sort_key(kv[0])
        )
    )


def decode_avoid_vector(encoded: Sequence[Tuple]) -> AvoidVector:
    """Inverse of :func:`encode_avoid_vector`."""
    return {
        (dest, avoided): RouteEntry(cost=cost, path=tuple(path))
        for dest, avoided, cost, path in encoded
    }


def encode_route_delta(current: Mapping[NodeId, RouteEntry],
                       last: Mapping[NodeId, RouteEntry]) -> Tuple:
    """Delta announcement: ``current`` relative to ``last``.

    Rows keep the full-vector shape ``(dest, cost, path)`` for changed
    or new destinations; a destination present in ``last`` but absent
    from ``current`` becomes the withdrawal row ``(dest, None, ())``
    (never produced by an obedient node, whose table only grows).
    Unchanged rows — the overwhelming majority after the first
    broadcast — are omitted, which is what keeps per-message work
    proportional to actual route churn.
    """
    rows = []
    for dest, entry in current.items():
        prev = last.get(dest)
        if prev is None or (prev is not entry and prev != entry):
            rows.append((dest, entry.cost, entry.path))
    for dest in last:
        if dest not in current:
            rows.append((dest, None, ()))
    rows.sort(key=lambda row: _sort_key(row[0]))
    return tuple(rows)


def encode_avoid_delta(current: Mapping[AvoidKey, RouteEntry],
                       last: Mapping[AvoidKey, RouteEntry]) -> Tuple:
    """Delta announcement for an avoidance vector.

    Same contract as :func:`encode_route_delta` with rows
    ``(dest, avoided, cost, path)`` and withdrawals
    ``(dest, avoided, None, ())``.
    """
    rows = []
    for key, entry in current.items():
        prev = last.get(key)
        if prev is None or (prev is not entry and prev != entry):
            rows.append((key[0], key[1], entry.cost, entry.path))
    for key in last:
        if key not in current:
            rows.append((key[0], key[1], None, ()))
    rows.sort(key=lambda row: (_sort_key(row[0]), _sort_key(row[1])))
    return tuple(rows)


class FPSSComputation:
    """Pure FPSS mechanism state for one node (or one mirror of one).

    Parameters
    ----------
    owner:
        The node whose computation this is.
    neighbors:
        The owner's neighbour set (semi-private connectivity
        information; common knowledge between link endpoints).
    own_cost:
        The transit cost the owner *declares* (truthful for obedient
        nodes; a lie is an information-revelation deviation).
    """

    def __init__(
        self, owner: NodeId, neighbors: Sequence[NodeId], own_cost: Cost
    ) -> None:
        self.owner = owner
        self.neighbors: Tuple[NodeId, ...] = tuple(sorted(neighbors, key=repr))
        self._neighbor_set: FrozenSet[NodeId] = frozenset(self.neighbors)
        self.own_cost = float(own_cost)

        self.costs = TransitCostTable()  # DATA1
        self.costs.declare(owner, own_cost)
        self.routing = RoutingTable(owner)  # DATA2
        self.pricing = PricingTable(owner)  # DATA3*
        self.avoid: AvoidVector = {}
        #: Last routing/avoid vector received from each neighbour.
        self.neighbor_routes: Dict[NodeId, RouteVector] = {}
        self.neighbor_avoid: Dict[NodeId, AvoidVector] = {}
        self.computation_count = 0
        self._reset_incremental_state()

    def _reset_incremental_state(self) -> None:
        """(Re)initialise the delta-recomputation bookkeeping."""
        #: Reference counts for the destination universe: +1 per
        #: neighbour vector currently announcing the destination, +1 if
        #: it is a neighbour (the base case of the relaxation).  A
        #: destination is relaxed only while its count is positive —
        #: the same universe the full rescans derive on every call.
        self._dest_refs: Dict[NodeId, int] = {
            n: 1 for n in self.neighbors if n != self.owner
        }
        #: Routing dirty map: destination -> the set of neighbours
        #: whose input changed since the last relaxation, or ``None``
        #: for "rescan every candidate" (universe (re)entry, DATA1
        #: change).
        self._dirty_routes: Dict[NodeId, Optional[Set[NodeId]]] = {}
        #: Avoidance keys whose reigning argmin was invalidated and
        #: that need a full candidate rescan.  Improvements never land
        #: here — they are adopted directly during ingestion (the
        #: common, monotone case), with :attr:`_avoid_changed`
        #: accumulating whether any entry moved since the last
        #: recompute call.
        self._avoid_rescan: Set[AvoidKey] = set()
        self._avoid_changed = False
        self._dirty_pricing: Set[NodeId] = set()
        #: Destinations that (re)entered the universe and whose
        #: avoidance keys still need a rescan sweep.  Expanded lazily
        #: at the next recompute — and only for destinations that have
        #: stored offers at all — instead of eagerly marking n keys.
        self._avoid_dest_pending: Set[NodeId] = set()
        #: How many stored avoidance offers (across neighbours) exist
        #: per destination; gates the pending-destination expansion.
        self._avoid_offers_by_dest: Dict[NodeId, int] = {}
        #: Keys whose DATA2/avoidance entries changed since the last
        #: announcement was encoded — the O(|changes|) source for delta
        #: broadcasts of the unmodified (suggested) specification.
        self._route_changes: Set[NodeId] = set()
        self._avoid_changes: Set[AvoidKey] = set()
        #: Last relaxation result per key: ``(supplier, stripped key)``
        #: where the supplier is the neighbour whose candidate won (or
        #: ``_BASE`` for the directly-connected base case) and the
        #: stripped key orders candidates without materialising them.
        #: Tracking the argmin makes a relaxation O(|changed inputs|)
        #: unless the winning input itself worsened.
        self._route_state: Dict[NodeId, Tuple] = {}
        self._avoid_state: Dict[AvoidKey, Tuple] = {}

    # ------------------------------------------------------------------
    # phase 1: transit cost dissemination
    # ------------------------------------------------------------------

    def note_cost_declaration(self, node: NodeId, cost: Cost) -> bool:
        """Record a flooded declaration; True if DATA1 changed.

        DATA1 is frozen before phase 2 in any honest run; if it does
        change while phase-2 state exists, every derived entry is
        conservatively marked dirty so the incremental relaxations stay
        equivalent to the full rescans.
        """
        changed = self.costs.declare(node, cost)
        if changed and (
            self.neighbor_routes or self.neighbor_avoid or self.routing.destinations
        ):
            self._mark_all_dirty()
        return changed

    def _mark_all_dirty(self) -> None:
        """Schedule a full re-relaxation through the incremental path."""
        known = [n for n in self.costs.as_dict() if n != self.owner]
        for dest in self._dest_refs:
            self._dirty_routes[dest] = None
            self._dirty_pricing.add(dest)
            for avoided in known:
                if avoided != dest:
                    self._avoid_rescan.add((dest, avoided))
        # Rows for routed destinations that dropped out of the universe
        # are still re-derived by the full derive_pricing; match it.
        self._dirty_pricing.update(self.routing.destinations)

    def known_nodes(self) -> Tuple[NodeId, ...]:
        """Every node with a DATA1 entry, repr-sorted."""
        return tuple(sorted(self.costs.as_dict(), key=repr))

    # ------------------------------------------------------------------
    # phase 2: routing and pricing
    # ------------------------------------------------------------------

    def reset_phase2(self) -> None:
        """Clear DATA2/DATA3* state for a phase restart."""
        self.routing = RoutingTable(self.owner)
        self.pricing = PricingTable(self.owner)
        self.avoid = {}
        self.neighbor_routes = {}
        self.neighbor_avoid = {}
        self._reset_incremental_state()

    # --- destination-universe reference counting ----------------------

    def _universe_add(self, dest: NodeId) -> None:
        count = self._dest_refs.get(dest, 0)
        self._dest_refs[dest] = count + 1
        if count == 0:
            # The destination just (re)entered the universe: avoidance
            # inputs stored for it while it was outside become
            # relaxable, exactly as the full rescan would now see them.
            self._dirty_routes[dest] = None
            self._dirty_pricing.add(dest)
            self._avoid_dest_pending.add(dest)

    def _universe_discard(self, dest: NodeId) -> None:
        count = self._dest_refs.get(dest, 0)
        if count <= 1:
            self._dest_refs.pop(dest, None)
        else:
            self._dest_refs[dest] = count - 1

    @staticmethod
    def _mark_dirty(dirty: Dict, key, supplier: NodeId) -> None:
        """Note that ``supplier``'s input for ``key`` changed."""
        current = dirty.get(key)
        if current is not None:
            current.add(supplier)
        elif key not in dirty:
            dirty[key] = {supplier}
        # an existing None sentinel already demands a full rescan

    def _avoid_offer_added(self, dest: NodeId) -> None:
        """Count one newly stored avoidance offer for ``dest``."""
        offers = self._avoid_offers_by_dest
        offers[dest] = offers.get(dest, 0) + 1

    def _avoid_offer_removed(self, dest: NodeId) -> None:
        """Drop one stored avoidance offer for ``dest``."""
        offers = self._avoid_offers_by_dest
        count = offers.get(dest, 0)
        if count <= 1:
            offers.pop(dest, None)
        else:
            offers[dest] = count - 1

    def consume_route_changes(self) -> Set[NodeId]:
        """Destinations whose DATA2 entry changed since last consumed."""
        changes = self._route_changes
        self._route_changes = set()
        return changes

    def consume_avoid_changes(self) -> Set[AvoidKey]:
        """Avoidance keys whose entry changed since last consumed."""
        changes = self._avoid_changes
        self._avoid_changes = set()
        return changes

    def consume_route_delta(self) -> Tuple:
        """The next suggested-specification routing delta broadcast.

        Reads the changed-key set in O(|changes|) and consumes it.
        Principals with an unmodified broadcast hook and checker
        mirrors both encode from here, which is what keeps actual and
        predicted broadcast streams bit-identical.
        """
        routing = self.routing
        rows = [
            (dest, entry.cost, entry.path)
            for dest in self.consume_route_changes()
            if (entry := routing.entry(dest)) is not None
        ]
        rows.sort(key=lambda row: _sort_key(row[0]))
        return tuple(rows)

    def consume_avoid_delta(self) -> Tuple:
        """The next suggested-specification avoidance delta broadcast."""
        avoid = self.avoid
        rows = [
            (key[0], key[1], entry.cost, entry.path)
            for key in self.consume_avoid_changes()
            if (entry := avoid.get(key)) is not None
        ]
        rows.sort(key=lambda row: (_sort_key(row[0]), _sort_key(row[1])))
        return tuple(rows)

    # --- neighbour vector ingestion -----------------------------------
    #
    # Offers are stored *raw* as ``(cost, path)`` tuples straight off
    # the wire: with broadcast fan-out every announcement is ingested
    # by every neighbour, so per-row materialisation (entry objects,
    # sort keys) would dominate the hot path.  Entries are only
    # materialised for adopted winners.

    def apply_route_update(self, neighbor: NodeId, vector: RouteVector) -> None:
        """Store a neighbour's *full* routing vector (dict form).

        Diffs against the previously stored vector and marks only the
        destinations whose rows changed as dirty.  The protocol's wire
        path uses :meth:`apply_route_delta`; this entry point serves
        replay tests and any caller holding a whole table.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        raw = {
            dest: (dest, entry.cost, entry.path) for dest, entry in vector.items()
        }
        stored = self.neighbor_routes.get(neighbor)
        if stored is None:
            stored = self.neighbor_routes[neighbor] = {}
        owner = self.owner
        dirty = self._dirty_routes
        for dest in stored.keys() | raw.keys():
            offer = raw.get(dest)
            if stored.get(dest) == offer:
                continue
            if offer is None:
                del stored[dest]
                if dest != owner:
                    self._universe_discard(dest)
            else:
                if dest != owner and dest not in stored:
                    self._universe_add(dest)
                stored[dest] = offer
            if dest != owner:
                self._mark_dirty(dirty, dest, neighbor)

    def apply_route_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta produced by :func:`encode_route_delta`.

        Upserts ``(dest, cost, path)`` rows, removes withdrawal rows
        (``cost is None``), and marks each touched destination dirty
        with this neighbour as the changed supplier.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a route update from non-neighbour {neighbor!r}"
            )
        stored = self.neighbor_routes.get(neighbor)
        if stored is None:
            stored = self.neighbor_routes[neighbor] = {}
        owner = self.owner
        dirty = self._dirty_routes
        for row in rows:
            dest = row[0]
            if row[1] is None:  # withdrawal
                if dest in stored:
                    del stored[dest]
                    if dest != owner:
                        self._universe_discard(dest)
            else:
                if dest != owner and dest not in stored:
                    self._universe_add(dest)
                stored[dest] = row  # rows are shared across receivers
            if dest != owner:
                suppliers = dirty.get(dest)
                if suppliers is not None:
                    suppliers.add(neighbor)
                elif dest not in dirty:
                    dirty[dest] = {neighbor}

    def apply_avoid_update(self, neighbor: NodeId, vector: AvoidVector) -> None:
        """Store a neighbour's *full* avoidance vector (dict form).

        Marks changed ``(destination, avoided)`` keys dirty, and their
        destinations' pricing rows with them: even a value-preserving
        tie change can alter a DATA3* identity tag.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        raw = {
            key: (key[0], key[1], entry.cost, entry.path)
            for key, entry in vector.items()
        }
        stored = self.neighbor_avoid.get(neighbor)
        if stored is None:
            stored = self.neighbor_avoid[neighbor] = {}
        rescan = self._avoid_rescan
        for key in stored.keys() | raw.keys():
            offer = raw.get(key)
            if stored.get(key) == offer:
                continue
            if offer is None:
                del stored[key]
                self._avoid_offer_removed(key[0])
            else:
                if key not in stored:
                    self._avoid_offer_added(key[0])
                stored[key] = offer
            rescan.add(key)
            self._dirty_pricing.add(key[0])

    def apply_avoid_delta(self, neighbor: NodeId, rows: Sequence[Tuple]) -> None:
        """Ingest a wire delta, fusing the monotone relaxation step.

        Every ``(dest, avoided, cost, path)`` row is stored as a raw
        offer; rows that *improve* on the reigning argmin are adopted
        immediately (a running min over the batch — confluent, so the
        batch-boundary result equals a batch-end relaxation), rows that
        worsen or withdraw the reigning argmin schedule a full rescan
        of the key, and strictly dominated rows — the overwhelming
        majority under broadcast fan-in — cost one comparison.
        Pricing rows are marked dirty only when a row can join, leave,
        or move the argmin tie, since DATA3* tags depend on exactly
        that set.
        """
        if neighbor not in self.neighbors:
            raise ProtocolError(
                f"{self.owner!r} got a price update from non-neighbour {neighbor!r}"
            )
        stored = self.neighbor_avoid.get(neighbor)
        if stored is None:
            stored = self.neighbor_avoid[neighbor] = {}
        ncost = self.costs.get(neighbor)
        owner = self.owner
        refs = self._dest_refs
        state = self._avoid_state
        rescan = self._avoid_rescan
        pricing = self._dirty_pricing
        changes = self._avoid_changes
        knows = self.costs.knows
        avoid = self.avoid
        for row in rows:
            dest, avoided, cost, path = row
            key = (dest, avoided)
            old = stored.get(key)
            if cost is None:  # withdrawal
                if old is None:
                    continue
                del stored[key]
                self._avoid_offer_removed(dest)
                st = state.get(key)
                if st is not None and ncost is not None:
                    if st[0] == neighbor:
                        rescan.add(key)
                        pricing.add(dest)
                    elif ncost + old[2] <= st[1]:
                        pricing.add(dest)  # an argmin tie may shrink
                continue
            stored[key] = row  # rows are shared across receivers
            if old is None:
                self._avoid_offer_added(dest)
            if ncost is None:
                continue  # unusable offers, exactly as in a full scan
            if dest not in refs:
                # Entries freeze outside the destination universe (the
                # full rescan skips them too); re-entry rescans.
                pricing.add(dest)
                continue
            total = ncost + cost
            st = state.get(key)
            if st is None:
                # First valid candidate for this key (any earlier offer
                # would have been relaxed into a state entry).
                if (
                    avoided != owner
                    and avoided != dest
                    and knows(avoided)
                    and owner not in path
                    and avoided not in path
                ):
                    state[key] = (neighbor, total, len(path), path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes.add(key)
                    self._avoid_changed = True
                    pricing.add(dest)
                continue
            st_cost = st[1]
            if st[0] == neighbor:
                # The reigning supplier re-announced: improved offers
                # stay adopted, worsened or invalid ones force a rescan.
                if owner in path or avoided in path:
                    rescan.add(key)
                    pricing.add(dest)
                    continue
                hops = len(path)
                if total < st_cost or (
                    total == st_cost
                    and (
                        hops < st[2]
                        or (hops == st[2] and _lex_key(path) < _lex_key(st[3]))
                    )
                ):
                    state[key] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes.add(key)
                    self._avoid_changed = True
                    pricing.add(dest)
                elif total == st_cost and hops == st[2] and path == st[3]:
                    pricing.add(dest)  # value-identical re-announce
                else:
                    rescan.add(key)
                    pricing.add(dest)
                continue
            if total > st_cost:
                # Dominated row — the hot path.  It still displaces the
                # neighbour's previous offer, which may have been tied
                # with the argmin.
                if old is not None and ncost + old[2] <= st_cost:
                    pricing.add(dest)
                continue
            if owner in path or avoided in path:
                if old is not None and ncost + old[2] <= st_cost:
                    pricing.add(dest)
                continue
            if total == st_cost:
                hops = len(path)
                if hops < st[2] or (
                    hops == st[2] and _lex_key(path) < _lex_key(st[3])
                ):
                    state[key] = (neighbor, total, hops, path)
                    avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
                    changes.add(key)
                    self._avoid_changed = True
                pricing.add(dest)  # joins or reshapes the tie either way
                continue
            state[key] = (neighbor, total, len(path), path)
            avoid[key] = RouteEntry(cost=total, path=(owner,) + tuple(path))
            changes.add(key)
            self._avoid_changed = True
            pricing.add(dest)

    # --- routing relaxation -------------------------------------------
    #
    # Candidates are compared through *stripped* keys ``(cost, hops,
    # lex)``: the actual candidate sort key is ``(cost, hops + 1,
    # (repr(owner),) + lex)`` with the owner prefix shared by every
    # candidate of a node, so dropping it is a monotone transformation
    # that preserves the argmin and every tie.  Cost is compared first
    # and the lexicographic component is built only on full ties, so
    # the common case never touches repr.  The per-key relaxation state
    # ``(supplier, cost, hops, path)`` remembers the reigning argmin:
    # as long as the winner's own input did not worsen, a relaxation
    # only scans the suppliers whose input changed.

    def recompute_routes(self) -> bool:
        """Re-derive DATA2 by rescanning every destination; True if changed.

        The relaxation is the path-vector Bellman-Ford of the
        Griffin-Wilfong model with the deterministic (cost, hops,
        lexicographic) tie-break shared with the centralized oracle.
        This full rescan is the reference the incremental variant is
        property-tested against; the hot path uses
        :meth:`recompute_routes_incremental`.
        """
        self.computation_count += 1
        changed = False
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        destinations.discard(self.owner)
        for destination in sorted(destinations, key=repr):
            if self._relax_route(destination):
                changed = True
        self._dirty_routes = {}
        return changed

    def recompute_routes_incremental(self) -> bool:
        """Relax only the dirty destinations; True if DATA2 changed.

        Observably identical to :meth:`recompute_routes` because a
        destination's candidate set depends only on its own rows in the
        neighbour vectors (diffed on ingestion) and on DATA1 (frozen in
        phase 2, conservatively handled otherwise).
        """
        self.computation_count += 1
        dirty = self._dirty_routes
        if not dirty:
            return False
        self._dirty_routes = {}
        refs = self._dest_refs
        changed = False
        for destination, suppliers in dirty.items():
            # Outside the universe the full rescan finds no candidates
            # either; rejoining re-marks the destination dirty.
            if destination in refs and self._relax_route(destination, suppliers):
                changed = True
        return changed

    def _relax_route(self, destination: NodeId, suppliers=None) -> bool:
        """Relax one destination; True if its DATA2 entry changed.

        ``suppliers`` limits the scan to the neighbours whose input
        changed (``None`` rescans everything): if the previous winner
        is not among them it still bounds the minimum, and if it is but
        improved, it still wins against the unchanged rest — only a
        worsened winner forces the full rescan.
        """
        owner = self.owner
        state = self._route_state.get(destination)
        cur = self.routing.entry(destination)
        full = suppliers is None
        if cur is not None and state is None:
            # The entry lost its supporting candidate in an earlier
            # no-candidate rescan; only a full rescan may touch it.
            full = True
        # best: (supplier, cost, hops, offer path) stripped candidate.
        best = None
        keep = False
        if not full and state is not None:
            sup = state[0]
            if sup is not _BASE and sup in suppliers:
                offer = self.neighbor_routes.get(sup, {}).get(destination)
                cand = None
                if offer is not None:
                    cost = self.costs.get(sup)
                    opath = offer[2]
                    if cost is not None and owner not in opath:
                        cand = (sup, cost + offer[1], len(opath), opath)
                if cand is None or _stripped_worse(cand, state):
                    full = True  # the reigning input worsened: rescan
                else:
                    best = cand
            else:
                best = state
                keep = True
        costs_get = self.costs.get
        routes_get = self.neighbor_routes.get
        for neighbor in (self.neighbors if full else suppliers):
            if neighbor == destination:
                if state is None or full:
                    if best is None or _stripped_beats_base(destination, best):
                        best = (_BASE, 0.0, 1, (destination,))
                        keep = False
                continue
            if best is not None and neighbor == best[0]:
                continue
            vec = routes_get(neighbor)
            offer = vec.get(destination) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[1]
            opath = offer[2]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath:
                continue
            best = (neighbor, total, len(opath), opath)
            keep = False
        if best is None:
            if state is not None:
                # No candidate supports the (retained) entry any more;
                # drop the argmin so future candidates force a rescan
                # instead of losing against stale state.
                del self._route_state[destination]
            return False
        if keep:
            return False
        if state is not None:
            if _stripped_equal(best, state):
                self._route_state[destination] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            self._route_state[destination] = best
            return False
        self._route_state[destination] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.routing.update(destination, entry)
        self._route_changes.add(destination)
        self._dirty_pricing.add(destination)
        return True

    # --- avoidance relaxation -----------------------------------------

    def recompute_avoidance(self) -> bool:
        """Re-derive the avoidance table by full rescan; True if changed.

        Reference counterpart of
        :meth:`recompute_avoidance_incremental`, retained for phase
        starts and the equivalence property tests.  The returned flag
        also covers entries already moved by the fused ingestion since
        the previous recompute call, so "did anything change since the
        last recomputation" keeps its meaning in every mode.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        all_nodes = set(self.known_nodes())
        destinations: Set[NodeId] = set()
        for vector in self.neighbor_routes.values():
            destinations.update(vector)
        destinations.update(self.neighbors)
        destinations.discard(self.owner)
        if not any(self.neighbor_avoid.values()):
            # Without avoidance inputs only the base case can supply a
            # candidate, so only directly-connected destinations matter
            # (typical at a phase start).
            destinations &= set(self.neighbors)
        for destination in sorted(destinations, key=repr):
            for avoided in sorted(all_nodes, key=repr):
                if avoided in (self.owner, destination):
                    continue
                if self._relax_avoid(destination, avoided):
                    changed = True
        self._avoid_rescan = set()
        self._avoid_dest_pending = set()
        return changed

    def recompute_avoidance_incremental(self) -> bool:
        """Settle the avoidance table; True if it changed.

        Improvements were already adopted during ingestion (the
        :attr:`_avoid_changed` flag); what remains is rescanning the
        keys whose reigning argmin was invalidated — worsened,
        withdrawn, or whose destination (re)entered the universe.
        """
        self.computation_count += 1
        changed = self._avoid_changed
        self._avoid_changed = False
        rescan = self._avoid_rescan
        pending = self._avoid_dest_pending
        if pending:
            self._avoid_dest_pending = set()
            refs = self._dest_refs
            offers_by_dest = self._avoid_offers_by_dest
            neighbor_set = self._neighbor_set
            owner = self.owner
            for dest in pending:
                if dest not in refs:
                    continue  # left the universe again; re-entry re-pends
                if dest not in offers_by_dest and dest not in neighbor_set:
                    continue  # no stored inputs: nothing a rescan could find
                for avoided in self.costs.as_dict():
                    if avoided != owner and avoided != dest:
                        rescan.add((dest, avoided))
        if rescan:
            self._avoid_rescan = set()
            refs = self._dest_refs
            costs = self.costs
            owner = self.owner
            for key in rescan:
                destination, avoided = key
                if destination not in refs:
                    continue  # rejoining the universe re-marks the key
                if avoided == owner or avoided == destination:
                    continue
                if not costs.knows(avoided):
                    continue  # DATA1 changes mark everything dirty
                if self._relax_avoid(destination, avoided):
                    changed = True
        return changed

    def _relax_avoid(self, destination: NodeId, avoided: NodeId) -> bool:
        """Fully rescan one avoidance key; True if its entry changed.

        Same stripped-candidate scan as :meth:`_relax_route`, with the
        avoided node excluded both as a neighbour and inside paths.
        """
        owner = self.owner
        key = (destination, avoided)
        state = self._avoid_state.get(key)
        cur = self.avoid.get(key)
        best = None
        costs_get = self.costs.get
        avoid_get = self.neighbor_avoid.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                if best is None or _stripped_beats_base(destination, best):
                    best = (_BASE, 0.0, 1, (destination,))
                continue
            vec = avoid_get(neighbor)
            offer = vec.get(key) if vec else None
            if offer is None:
                continue
            ncost = costs_get(neighbor)
            if ncost is None:
                continue
            total = ncost + offer[2]
            opath = offer[3]
            if best is not None:
                bcost = best[1]
                if total > bcost:
                    continue
                hops = len(opath)
                if total == bcost:
                    bhops = best[2]
                    if hops > bhops:
                        continue
                    if hops == bhops and _lex_key(opath) >= _lex_key(best[3]):
                        continue
            if owner in opath or avoided in opath:
                continue
            best = (neighbor, total, len(opath), opath)
        if best is None:
            if state is not None:
                # The (retained) entry lost its last supporting
                # candidate; drop the argmin so future candidates
                # force a rescan instead of losing to stale state.
                del self._avoid_state[key]
            return False
        if state is not None:
            if _stripped_equal(best, state):
                self._avoid_state[key] = best
                return False
        elif cur is not None and (
            best[1] == cur.cost
            and best[2] == len(cur.path) - 1
            and _lex_key(tuple(best[3])) == _lex_key(cur.path[1:])
        ):
            # The rescan re-derived the previously unsupported entry.
            self._avoid_state[key] = best
            return False
        self._avoid_state[key] = best
        sup, total, _hops, opath = best
        if sup is _BASE:
            entry = RouteEntry(cost=0.0, path=(owner, destination))
        else:
            entry = RouteEntry(cost=total, path=(owner,) + tuple(opath))
        self.avoid[key] = entry
        self._avoid_changes.add(key)
        self._dirty_pricing.add(destination)
        return True

    # --- pricing derivation -------------------------------------------

    def derive_pricing(self) -> bool:
        """Recompute DATA3* from DATA2 and the avoidance table.

        For every destination ``j`` with a route, and every transit
        node ``k`` interior to that route, install

            price = c_k + d^{-k}(owner, j) - d(owner, j)

        with the identity tag set to the argmin suppliers of the
        avoidance entry.  Returns True if any cell changed.  Full-table
        reference counterpart of :meth:`derive_pricing_incremental`.
        """
        self.computation_count += 1
        changed = False
        for destination in self.routing.destinations:
            if self._derive_pricing_row(destination):
                changed = True
        self._dirty_pricing = set()
        return changed

    def derive_pricing_incremental(self) -> bool:
        """Re-derive only the dirty pricing rows; True if changed.

        A row depends on its destination's DATA2 entry, the avoidance
        entries along that path, and the supplier tags (which read the
        avoidance *inputs* directly — a tie union can change a tag
        without changing any avoidance entry, which is why vector
        ingestion marks rows dirty by input key, not by entry change).
        """
        self.computation_count += 1
        dirty = self._dirty_pricing
        if not dirty:
            return False
        self._dirty_pricing = set()
        changed = False
        for destination in dirty:
            if self.routing.entry(destination) is None:
                continue  # a route arriving later re-marks the row
            if self._derive_pricing_row(destination):
                changed = True
        return changed

    def _derive_pricing_row(self, destination: NodeId) -> bool:
        """Re-derive one destination's DATA3* row; True if it changed."""
        entry = self.routing.entry(destination)
        assert entry is not None
        desired: Dict[NodeId, PricingEntryLike] = {}
        for transit in entry.path[1:-1]:
            avoid_entry = self.avoid.get((destination, transit))
            if avoid_entry is None or not self.costs.knows(transit):
                continue
            price = self.costs.cost(transit) + avoid_entry.cost - entry.cost
            tag = self._supplier_tag(destination, transit)
            desired[transit] = (price, tag)
        current_row = self.pricing.row(destination)
        current_view = {
            transit: (cell.price, cell.tag) for transit, cell in current_row.items()
        }
        if current_view == desired:
            return False
        self.pricing.clear_destination(destination)
        for transit, (price, tag) in desired.items():
            self.pricing.set_price(destination, transit, price, tag)
        return True

    def _supplier_tag(self, destination: NodeId, avoided: NodeId) -> FrozenSet[NodeId]:
        """Argmin suppliers of one avoidance entry (union on ties)."""
        owner = self.owner
        key = (destination, avoided)
        best = None  # (cost, hops, path)
        tag: List[NodeId] = []
        costs_get = self.costs.get
        avoid_get = self.neighbor_avoid.get
        for neighbor in self.neighbors:
            if neighbor == avoided:
                continue
            if neighbor == destination:
                cand = (0.0, 1, (destination,))
            else:
                vec = avoid_get(neighbor)
                offer = vec.get(key) if vec else None
                if offer is None:
                    continue
                ncost = costs_get(neighbor)
                if ncost is None:
                    continue
                opath = offer[3]
                if owner in opath or avoided in opath:
                    continue
                cand = (ncost + offer[2], len(opath), opath)
            if best is None:
                best = cand
                tag = [neighbor]
                continue
            if cand[0] != best[0]:
                if cand[0] < best[0]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[1] != best[1]:
                if cand[1] < best[1]:
                    best = cand
                    tag = [neighbor]
                continue
            if cand[2] is best[2]:
                tag.append(neighbor)
                continue
            lex_c, lex_b = _lex_key(cand[2]), _lex_key(best[2])
            if lex_c < lex_b:
                best = cand
                tag = [neighbor]
            elif lex_c == lex_b:
                tag.append(neighbor)
        return frozenset(tag)

    # ------------------------------------------------------------------
    # digests for bank comparison
    # ------------------------------------------------------------------

    def routing_digest(self) -> str:
        """Hash of DATA2 (BANK1 material)."""
        return self.routing.stable_digest()

    def pricing_digest(self) -> str:
        """Hash of DATA3* including tags (BANK2 material)."""
        return self.pricing.stable_digest()

    def cost_digest(self) -> str:
        """Hash of DATA1 (first-construction-phase checkpoint)."""
        return self.costs.stable_digest()

    def full_digest(self) -> str:
        """Combined digest over all construction state."""
        return stable_hash(
            (self.cost_digest(), self.routing_digest(), self.pricing_digest())
        )


PricingEntryLike = Tuple[Cost, FrozenSet[NodeId]]


class FPSSNode(ProtocolNode):
    """A trusting FPSS participant (the original, non-faithful protocol).

    The node follows the suggested specification but performs *no*
    checking: there are no checkers, no bank examination, and nothing
    prevents a rational variant from manipulating tables — which is
    exactly the gap the faithful extension closes.

    Subclass hook methods (`declared_cost`, `make_route_broadcast`,
    `make_price_broadcast`) are the seams where manipulation strategies
    attach.
    """

    def __init__(self, node_id: NodeId, true_cost: Cost) -> None:
        super().__init__(node_id)
        self.true_cost = float(true_cost)
        self.comp: Optional[FPSSComputation] = None
        self.phase: str = "idle"
        #: Batched-delivery state: while a batch is being applied the
        #: phase-2 handlers only ingest inputs and set the pending
        #: flag; the relaxation and broadcasts run once at the batch
        #: boundary (:meth:`deliver_batch`).
        self._in_batch = False
        self._batch_recompute_pending = False
        #: Last announced (hook-transformed) vectors, the baseline each
        #: delta broadcast is encoded against.
        self._announced_routes: RouteVector = {}
        self._announced_avoid: AvoidVector = {}
        # --- execution-phase state (DATA4 and usage logs) ---
        self.data4 = PaymentList(node_id)
        #: True transit cost actually incurred forwarding packets.
        self.incurred_cost: Cost = 0.0
        #: (origin, dest) -> {sender: volume} ground-truth receipts.
        self.receipts: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]] = {}
        #: (origin, dest) -> volume delivered here as destination.
        self.delivered: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    # deviation seams
    # ------------------------------------------------------------------

    def declared_cost(self) -> Cost:
        """The cost this node announces (information revelation)."""
        return self.true_cost

    def make_route_broadcast(self) -> RouteVector:
        """The routing vector this node announces (computation)."""
        assert self.comp is not None
        return {
            dest: entry
            for dest in self.comp.routing.destinations
            if (entry := self.comp.routing.entry(dest)) is not None
        }

    def make_price_broadcast(self) -> AvoidVector:
        """The avoidance/pricing vector this node announces."""
        assert self.comp is not None
        return dict(self.comp.avoid)

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------

    def start_phase1(self) -> None:
        """Begin the first construction phase: declare and flood costs."""
        self.comp = FPSSComputation(
            self.node_id, self.neighbors, self.declared_cost()
        )
        self.phase = "phase1"
        self.broadcast(
            KIND_COST_DECL, node=self.node_id, cost=self.comp.own_cost
        )

    def on_cost_decl(self, message: Message) -> None:
        """Flooding handler: record new declarations and relay them."""
        if self.comp is None:
            return
        node = message.payload["node"]
        cost = message.payload["cost"]
        if self.comp.note_cost_declaration(node, cost):
            self.sim.metrics.record_computation(self.node_id)
            self.relay_cost_declaration(message)

    def relay_cost_declaration(self, message: Message) -> None:
        """Forward a novel declaration to every neighbour.

        Message-passing action; a deviation seam for drop/alter tests.
        """
        for neighbor in self.neighbors:
            if neighbor != message.src:
                self.forward(message, neighbor)

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------

    def start_phase2(self) -> None:
        """Begin the second construction phase from converged DATA1."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} cannot enter phase 2 before 1")
        self.phase = "phase2"
        self._batch_recompute_pending = False
        self._announced_routes = {}
        self._announced_avoid = {}
        self.comp.reset_phase2()
        self.recompute_and_announce(force_announce=True)

    def recompute_and_announce(self, force_announce: bool = False) -> None:
        """Run the full-table relaxations and broadcast what changed.

        Used at phase starts (where everything is dirty anyway); the
        steady-state message path goes through the incremental
        relaxations instead.
        """
        assert self.comp is not None
        self.sim.metrics.record_computation(self.node_id)
        routes_changed = self.comp.recompute_routes()
        avoid_changed = self.comp.recompute_avoidance()
        self.comp.derive_pricing()
        if routes_changed or force_announce:
            self.announce_routes()
        if avoid_changed or force_announce:
            self.announce_prices()

    def _recompute_and_announce_incremental(self) -> None:
        """Relax the dirty entries once; broadcast each changed kind.

        Shared by the per-message path (unbatched mode) and the
        batch-boundary flush; both therefore emit identical broadcasts
        for identical ingested inputs.
        """
        assert self.comp is not None
        routes_changed = self.comp.recompute_routes_incremental()
        avoid_changed = self.comp.recompute_avoidance_incremental()
        self.comp.derive_pricing_incremental()
        if routes_changed:
            self.announce_routes()
        if avoid_changed:
            self.announce_prices()

    # ------------------------------------------------------------------
    # batched delivery
    # ------------------------------------------------------------------

    def deliver_batch(self, messages) -> None:
        """Apply a same-instant batch, then recompute/broadcast once.

        Every message still passes the inbound filter and its handler
        individually (checker copies are forwarded per input, per
        [PRINC1]/[PRINC2]); only the relaxation and the resulting
        broadcasts are deferred to the batch boundary, so a flooding
        round costs one recomputation instead of one per neighbour.
        """
        self._in_batch = True
        try:
            for message in messages:
                self.sim.deliver_now(message)
        finally:
            self._in_batch = False
        self._flush_batch()

    def _flush_batch(self) -> None:
        """Run the deferred batch-boundary recomputation, if any."""
        if not self._batch_recompute_pending:
            return
        self._batch_recompute_pending = False
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    def _next_route_announcement(self) -> Tuple:
        """Encode the next routing delta and advance the baseline.

        When the broadcast hook is unmodified (the suggested
        specification), the delta is read straight off the
        computation's changed-key set in O(|changes|); a hooked
        (deviant) broadcast falls back to diffing the transformed
        vector against the previously announced one.
        """
        comp = self.comp
        if comp is not None and type(self).make_route_broadcast is FPSSNode.make_route_broadcast:
            return comp.consume_route_delta()
        vector = self.make_route_broadcast()
        delta = encode_route_delta(vector, self._announced_routes)
        self._announced_routes = dict(vector)
        return delta

    def _next_price_announcement(self) -> Tuple:
        """Encode the next avoidance delta and advance the baseline."""
        comp = self.comp
        if comp is not None and type(self).make_price_broadcast is FPSSNode.make_price_broadcast:
            return comp.consume_avoid_delta()
        vector = self.make_price_broadcast()
        delta = encode_avoid_delta(vector, self._announced_avoid)
        self._announced_avoid = dict(vector)
        return delta

    def announce_routes(self) -> None:
        """Broadcast the delta of the (hook-provided) routing vector."""
        delta = self._next_route_announcement()
        self.multicast(
            self.neighbors, KIND_RT_UPDATE, size_hint=delta_size(delta), vector=delta
        )

    def announce_prices(self) -> None:
        """Broadcast the delta of the (hook-provided) avoidance vector."""
        delta = self._next_price_announcement()
        self.multicast(
            self.neighbors,
            KIND_PRICE_UPDATE,
            size_hint=delta_size(delta),
            vector=delta,
        )

    def on_rt_update(self, message: Message) -> None:
        """[PRINC1] computation half: recompute LCPs on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        self.comp.apply_route_delta(message.src, message.payload["vector"])
        self.after_route_input(message)
        if self._in_batch:
            self._batch_recompute_pending = True
            return
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    def on_price_update(self, message: Message) -> None:
        """[PRINC2] computation half: recompute pricing on new input."""
        if self.comp is None or self.phase != "phase2":
            return
        self.comp.apply_avoid_delta(message.src, message.payload["vector"])
        self.after_price_input(message)
        if self._in_batch:
            self._batch_recompute_pending = True
            return
        self.sim.metrics.record_computation(self.node_id)
        self._recompute_and_announce_incremental()

    # Hooks the faithful extension overrides to forward copies to
    # checkers *before* recomputation, per PRINC1/PRINC2 ordering.
    def after_route_input(self, message: Message) -> None:
        """Called after storing a route update (pre-recompute)."""

    def after_price_input(self, message: Message) -> None:
        """Called after storing a price update (pre-recompute)."""

    # ------------------------------------------------------------------
    # execution phase (mechanism usage)
    # ------------------------------------------------------------------

    def start_execution(self) -> None:
        """Enter the execution phase (after construction certifies)."""
        self.phase = "execution"

    def originate_flow(self, destination: NodeId, volume: float) -> None:
        """Send ``volume`` packets toward a destination along the LCP,
        recording the per-packet payments owed into DATA4."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has no converged tables")
        entry = self.comp.routing.entry(destination)
        if entry is None:
            raise RoutingError(
                f"{self.node_id!r} has no route to {destination!r}"
            )
        for payee, amount in self.compute_charges(destination, volume).items():
            self.data4.charge(payee, amount)
        first_hop = self.choose_first_hop(destination)
        # TTL bounds forwarding loops created by misrouting deviants,
        # as IP's hop limit does; honest LCP forwarding never hits it.
        ttl = 4 * max(4, len(self.comp.known_nodes()))
        self.send(
            first_hop,
            KIND_PACKET,
            origin=self.node_id,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def on_packet(self, message: Message) -> None:
        """Receive a packet: deliver locally or transit it onward."""
        origin = message.payload["origin"]
        destination = message.payload["destination"]
        volume = message.payload["volume"]
        flow = (origin, destination)
        self.receipts.setdefault(flow, {})
        self.receipts[flow][message.src] = (
            self.receipts[flow].get(message.src, 0.0) + volume
        )
        self.observe_packet(message)
        if destination == self.node_id:
            self.delivered[flow] = self.delivered.get(flow, 0.0) + volume
            return
        if not self.should_forward(origin, destination, volume):
            return
        ttl = message.payload.get("ttl", 64) - 1
        if ttl <= 0:
            return  # loop guard; settlement treats it as a drop
        self.incurred_cost += self.true_cost * volume
        next_hop = self.choose_next_hop(origin, destination)
        self.send(
            next_hop,
            KIND_PACKET,
            origin=origin,
            destination=destination,
            volume=volume,
            ttl=ttl,
        )

    def observe_packet(self, message: Message) -> None:
        """Hook for checker-side packet observation (faithful mode)."""

    # --- execution deviation seams -----------------------------------

    def compute_charges(
        self, destination: NodeId, volume: float
    ) -> Dict[NodeId, float]:
        """Per-payee charges for one originated flow, from DATA3*."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None:
            return {}
        # Prices are non-negative at the honest fixed point; off the
        # fixed point (deviant runs) a stale table can yield a negative
        # price, which no node would ever accept as a charge.
        return {
            transit: max(0.0, self.comp.pricing.price(destination, transit))
            * volume
            for transit in entry.path[1:-1]
        }

    def choose_first_hop(self, destination: NodeId) -> NodeId:
        """First hop for own traffic (suggested: the LCP next hop)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        assert entry is not None and len(entry.path) >= 2
        return entry.path[1]

    def choose_next_hop(self, origin: NodeId, destination: NodeId) -> NodeId:
        """Next hop for transited traffic (suggested: own LCP)."""
        assert self.comp is not None
        entry = self.comp.routing.entry(destination)
        if entry is None or len(entry.path) < 2:
            raise RoutingError(
                f"{self.node_id!r} cannot transit toward {destination!r}"
            )
        return entry.path[1]

    def should_forward(
        self, origin: NodeId, destination: NodeId, volume: float
    ) -> bool:
        """Whether to forward a transiting flow (suggested: always)."""
        return True

    def report_payments(self) -> Dict[NodeId, float]:
        """The DATA4 report submitted for settlement."""
        return self.data4.as_dict()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def routing_table(self) -> RoutingTable:
        """This node's DATA2."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.routing

    def pricing_table(self) -> PricingTable:
        """This node's DATA3*."""
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} has not started")
        return self.comp.pricing


class FullRecomputeFPSSNode(FPSSNode):
    """Reference FPSS node relaxing by full-table rescan every time.

    Combined with ``Simulator(batch_delivery=False)`` this reproduces
    the pre-incremental engine exactly (one whole-table recomputation
    per received update) — the "before" leg of the convergence
    benchmarks and the protocol-level equivalence tests.
    """

    def _recompute_and_announce_incremental(self) -> None:
        """Run the full rescans where the engine would run deltas."""
        assert self.comp is not None
        routes_changed = self.comp.recompute_routes()
        avoid_changed = self.comp.recompute_avoidance()
        self.comp.derive_pricing()
        if routes_changed:
            self.announce_routes()
        if avoid_changed:
            self.announce_prices()
