"""repro: Specification Faithfulness in Networks with Rational Nodes.

A from-scratch reproduction of Shneidman & Parkes (PODC 2004): the
rational-manipulation failure model, distributed mechanism
specifications with IC/CC/AC faithfulness verification, and the
faithful extension of the FPSS VCG interdomain-routing mechanism with
checker nodes and a checkpointing bank.

Subpackages
-----------
``repro.specs``
    State-machine specification language, external-action
    classification, strategies, phase decomposition (Sections 3.1-3.4,
    3.9).
``repro.mechanism``
    Centralized MD, VCG, distributed mechanism specifications, ex post
    Nash and faithfulness verifiers (Sections 3.2-3.8).
``repro.sim``
    Deterministic discrete-event network simulator with the failure
    taxonomy including rational manipulation.
``repro.routing``
    FPSS substrate: AS graphs, LCP/VCG oracle, DATA1-DATA4 tables,
    distributed protocol (Section 4.1).
``repro.faithful``
    The faithful extension: checkers, bank, execution, manipulation
    catalogue (Sections 4.2-4.3, Theorem 1).
``repro.election``
    The Section 3 leader-election motivating example.
``repro.games``
    Normal-form games and the deviation explorer.
``repro.workloads`` / ``repro.analysis``
    Topology and traffic generators; experiment runners and reports.

Quickstart
----------
>>> from repro.routing import figure1_graph
>>> from repro.faithful import FaithfulFPSSProtocol
>>> from repro.workloads import uniform_all_pairs
>>> graph = figure1_graph()
>>> result = FaithfulFPSSProtocol(graph, uniform_all_pairs(graph)).run()
>>> result.progressed
True
"""

from . import (
    analysis,
    election,
    faithful,
    games,
    mechanism,
    routing,
    sim,
    specs,
    workloads,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "analysis",
    "election",
    "faithful",
    "games",
    "mechanism",
    "routing",
    "sim",
    "specs",
    "workloads",
]
