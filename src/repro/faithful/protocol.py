"""Protocol orchestration: faithful and plain FPSS mechanism runs.

Reproduces: Section 4 of Shneidman & Parkes (PODC'04).
:class:`FaithfulFPSSProtocol` drives the complete extended
specification: the two construction phases separated by bank
checkpoints (with restart semantics), then the execution phase with
settlement; checker mirrors replay principals through one shared
replay kernel per principal (:mod:`repro.routing.kernel`) unless
``shared_checking=False`` selects the per-neighbour reference path.
:class:`PlainFPSSProtocol` runs the original, trusting FPSS — no
checkers, no bank examination, reported payments taken at face value —
providing the baseline that shows *why* the extension is needed
(experiment E5).  :func:`run_checked_construction` isolates the fully
mirrored construction (no bank, no traffic) for the checker-scaling
benchmarks and parity tests.

Utility model (Section 4.3 assumptions):

* a node's money flow = payments received - charges paid - penalties;
* its real resource cost = true transit cost actually incurred;
* "every node wishes to make progress in the mechanism, and indeed has
  a strong negative value when a construction phase does not
  progress" — a run that exhausts its restart budget ends with every
  node receiving ``no_progress_utility``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConvergenceError
from ..obs.trace import emit_marker
from ..routing.fpss import FPSSNode
from ..routing.graph import ASGraph, Cost, NodeId
from ..routing.kernel import KernelStats, MirrorKernelPool
from ..sim.crypto import SigningAuthority
from ..sim.simulator import Simulator
from ..routing.convergence import topology_from_graph, verify_against_oracle
from .audit import DetectionReport, Flag
from .bank import BankNode
from .node import BANK_ID, FaithfulRoutingNode

#: (source, destination) -> packet volume.
TrafficMatrix = Mapping[Tuple[NodeId, NodeId], float]

#: Builds the node for one vertex; manipulation strategies substitute
#: deviant subclasses for their target node here.
FaithfulNodeFactory = Callable[[NodeId, Cost, SigningAuthority], FaithfulRoutingNode]
PlainNodeFactory = Callable[[NodeId, Cost], FPSSNode]


@dataclass
class RunResult:
    """Everything a mechanism run produced."""

    progressed: bool
    utilities: Dict[NodeId, float]
    detection: DetectionReport
    received: Dict[NodeId, float] = field(default_factory=dict)
    charged: Dict[NodeId, float] = field(default_factory=dict)
    penalties: Dict[NodeId, float] = field(default_factory=dict)
    incurred: Dict[NodeId, float] = field(default_factory=dict)
    metrics: Dict[str, int] = field(default_factory=dict)
    construction_events: int = 0

    def utility_of(self, node_id: NodeId) -> float:
        """One node's realised utility."""
        return self.utilities[node_id]


class FaithfulFPSSProtocol:
    """One complete run of the extended (faithful) FPSS specification.

    Parameters
    ----------
    graph:
        The AS graph with *true* transit costs (deviant nodes may
        declare otherwise through their node subclass).
    traffic:
        Execution-phase traffic matrix.
    node_factory:
        Optional substitution hook for deviant node subclasses.
    max_restarts:
        Restart budget per construction checkpoint before the run is
        declared non-progressing.
    epsilon:
        The execution-phase penalty margin ("epsilon-above the
        attempted deviation").
    no_progress_utility:
        Utility assigned to every node when construction never
        certifies.
    shared_checking:
        Share one replay kernel per principal across all of its
        checkers within this (single-process) run — the
        :class:`~repro.routing.kernel.MirrorKernelPool` dedup; flags
        and digests are bit-identical either way (the sharing
        invariant is verified per mirror, never assumed).  ``False``
        keeps every mirror on its private per-neighbour replay, the
        retained reference path.
    """

    def __init__(
        self,
        graph: ASGraph,
        traffic: TrafficMatrix,
        node_factory: Optional[FaithfulNodeFactory] = None,
        max_restarts: int = 2,
        epsilon: float = 0.01,
        no_progress_utility: float = -1000.0,
        trace_enabled: bool = False,
        max_events: int = 2_000_000,
        link_delays=1.0,
        bank_honors_flags: bool = True,
        node_adapters: Optional[Callable[[FaithfulRoutingNode], None]] = None,
        shared_checking: bool = True,
    ) -> None:
        graph.require_biconnected()
        self.graph = graph
        self.traffic = dict(traffic)
        self.node_factory = node_factory or (
            lambda node_id, cost, signing: FaithfulRoutingNode(
                node_id, cost, signing
            )
        )
        self.max_restarts = max_restarts
        self.epsilon = epsilon
        self.no_progress_utility = no_progress_utility
        self.trace_enabled = trace_enabled
        self.max_events = max_events
        #: Constant, mapping, or callable per-link delay (asynchrony).
        self.link_delays = link_delays
        #: Ablation switch: when False, BANK1/BANK2 compare digests
        #: only and ignore checker flags (used to show the flags are a
        #: necessary ingredient, not redundancy).
        self.bank_honors_flags = bank_honors_flags
        #: Optional hook applied to every node after construction,
        #: e.g. installing failure adapters for the Section 5
        #: experiments (omission faults on obedient nodes).
        self.node_adapters = node_adapters
        self.shared_checking = shared_checking
        #: The run's shared-replay pool (None until :meth:`run`, or
        #: with ``shared_checking=False``); exposes dedup counters.
        self.mirror_pool: Optional[MirrorKernelPool] = None
        #: The built network and bank (None until :meth:`run`); the
        #: bank retains the collected stage reports, so callers can
        #: re-settle them (e.g. per-flow vs. columnar equivalence).
        self.nodes: Optional[Dict[NodeId, FaithfulRoutingNode]] = None
        self.bank: Optional[BankNode] = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _build(self) -> Tuple[Simulator, Dict[NodeId, FaithfulRoutingNode], BankNode]:
        signing = SigningAuthority()
        simulator = Simulator(
            topology_from_graph(self.graph, delay=self.link_delays),
            trace_enabled=self.trace_enabled,
        )
        nodes: Dict[NodeId, FaithfulRoutingNode] = {}
        self.mirror_pool = MirrorKernelPool() if self.shared_checking else None
        for node_id in self.graph.nodes:
            signing.register(node_id)
            node = self.node_factory(node_id, self.graph.cost(node_id), signing)
            if self.node_adapters is not None:
                self.node_adapters(node)
            node.mirror_pool = self.mirror_pool
            nodes[node_id] = node
            simulator.add_node(node)
        signing.register(BANK_ID)
        bank = BankNode(signing)
        simulator.add_node(bank, well_known=True)
        return simulator, nodes, bank

    def _quiesce(self, simulator: Simulator) -> int:
        return simulator.run_until_quiescent(max_events=self.max_events)

    def _checker_map(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """Every neighbour of a node is a checker for that node."""
        return {n: self.graph.neighbors(n) for n in self.graph.nodes}

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute construction -> checkpoints -> execution -> settle."""
        simulator, nodes, bank = self._build()
        # Expose the built network so callers (e.g. the settlement
        # equivalence tests) can re-settle the collected reports.
        self.nodes = nodes
        self.bank = bank
        node_ids = tuple(sorted(nodes, key=repr))
        detection = DetectionReport()
        checker_map = self._checker_map()
        construction_events = 0

        # ---------------- first construction phase -------------------
        phase1_certified = False
        for _attempt in range(self.max_restarts + 1):
            emit_marker(
                "protocol.phase",
                sim_time=simulator.now,
                phase="phase1",
                attempt=_attempt,
            )
            for node_id in node_ids:
                simulator.schedule_local(
                    node_id, 0.0, nodes[node_id].start_phase1, label="phase1"
                )
            construction_events += self._quiesce(simulator)
            bank.request_reports("phase1", node_ids)
            construction_events += self._quiesce(simulator)
            decision = bank.decide_phase1(node_ids)
            detection.record(decision)
            if decision.green_light:
                phase1_certified = True
                break
        if not phase1_certified:
            return self._no_progress_result(
                simulator, nodes, detection, construction_events
            )

        # Checker-setup handshake: share connectivity with checkers.
        for node_id in node_ids:
            nodes[node_id].prepare_checking(
                {
                    neighbor: self.graph.neighbors(neighbor)
                    for neighbor in self.graph.neighbors(node_id)
                }
            )

        # ---------------- second construction phase ------------------
        phase2_certified = False
        for _attempt in range(self.max_restarts + 1):
            emit_marker(
                "protocol.phase",
                sim_time=simulator.now,
                phase="phase2",
                attempt=_attempt,
            )
            if self.mirror_pool is not None:
                # A restart replays the phase from scratch; restarted
                # mirrors must never attach to a consumed op log.
                self.mirror_pool.new_epoch()
                emit_marker("mirror.epoch", sim_time=simulator.now)
            for node_id in node_ids:
                simulator.schedule_local(
                    node_id, 0.0, nodes[node_id].start_phase2, label="phase2"
                )
            construction_events += self._quiesce(simulator)

            bank.request_reports("bank1", node_ids)
            construction_events += self._quiesce(simulator)
            decision1 = bank.decide_bank1(
                checker_map, honor_flags=self.bank_honors_flags
            )
            detection.record(decision1)
            if decision1.deviation_detected:
                continue

            bank.request_reports("bank2", node_ids)
            construction_events += self._quiesce(simulator)
            decision2 = bank.decide_bank2(
                checker_map, honor_flags=self.bank_honors_flags
            )
            detection.record(decision2)
            if decision2.deviation_detected:
                continue
            phase2_certified = True
            break
        if not phase2_certified:
            return self._no_progress_result(
                simulator, nodes, detection, construction_events
            )

        # ---------------- execution phase ----------------------------
        emit_marker(
            "protocol.phase", sim_time=simulator.now, phase="execution"
        )
        for node_id in node_ids:
            nodes[node_id].start_execution()
        for (source, destination), volume in sorted(self.traffic.items(), key=repr):
            if volume <= 0:
                continue
            node = nodes[source]
            simulator.schedule_local(
                source,
                0.0,
                lambda n=node, d=destination, v=volume: n.originate_flow(d, v),
                label="originate",
            )
        self._quiesce(simulator)

        bank.request_reports("execution", node_ids)
        self._quiesce(simulator)
        records, settlement_flags = bank.settle(
            node_ids,
            declared_costs={n: nodes[n].comp.costs.cost(n) for n in node_ids},
            epsilon=self.epsilon,
        )
        detection.settlement_flags.extend(settlement_flags)

        utilities: Dict[NodeId, float] = {}
        received: Dict[NodeId, float] = {}
        charged: Dict[NodeId, float] = {}
        penalties: Dict[NodeId, float] = {}
        incurred: Dict[NodeId, float] = {}
        for node_id in node_ids:
            record = records[node_id]
            received[node_id] = record.received
            charged[node_id] = record.charged
            penalties[node_id] = record.penalties
            incurred[node_id] = nodes[node_id].incurred_cost
            utilities[node_id] = (
                record.received
                - record.charged
                - record.penalties
                - nodes[node_id].incurred_cost
            )

        return RunResult(
            progressed=True,
            utilities=utilities,
            detection=detection,
            received=received,
            charged=charged,
            penalties=penalties,
            incurred=incurred,
            metrics=simulator.metrics.summary(),
            construction_events=construction_events,
        )

    def _no_progress_result(
        self,
        simulator: Simulator,
        nodes: Mapping[NodeId, FaithfulRoutingNode],
        detection: DetectionReport,
        construction_events: int,
    ) -> RunResult:
        detection.progressed = False
        return RunResult(
            progressed=False,
            utilities={n: self.no_progress_utility for n in nodes},
            detection=detection,
            metrics=simulator.metrics.summary(),
            construction_events=construction_events,
        )


class PlainFPSSProtocol:
    """The original FPSS: trusting construction and settlement.

    Nodes exchange and believe each other's tables; at settlement each
    origin pays exactly what it *reports* owing, and transit nodes
    receive those reported amounts.  No deviation is ever detected —
    this is the baseline whose manipulation gains the faithful
    extension eliminates.
    """

    def __init__(
        self,
        graph: ASGraph,
        traffic: TrafficMatrix,
        node_factory: Optional[PlainNodeFactory] = None,
        trace_enabled: bool = False,
        max_events: int = 2_000_000,
        link_delays=1.0,
    ) -> None:
        graph.require_biconnected()
        self.graph = graph
        self.traffic = dict(traffic)
        self.node_factory = node_factory or (
            lambda node_id, cost: FPSSNode(node_id, cost)
        )
        self.trace_enabled = trace_enabled
        self.max_events = max_events
        self.link_delays = link_delays

    def run(self) -> RunResult:
        """Construction to quiescence, traffic, trusting settlement."""
        simulator = Simulator(
            topology_from_graph(self.graph, delay=self.link_delays),
            trace_enabled=self.trace_enabled,
        )
        nodes: Dict[NodeId, FPSSNode] = {}
        for node_id in self.graph.nodes:
            node = self.node_factory(node_id, self.graph.cost(node_id))
            nodes[node_id] = node
            simulator.add_node(node)
        node_ids = tuple(sorted(nodes, key=repr))

        construction_events = 0
        emit_marker("protocol.phase", sim_time=simulator.now, phase="phase1")
        for node_id in node_ids:
            simulator.schedule_local(
                node_id, 0.0, nodes[node_id].start_phase1, label="phase1"
            )
        construction_events += simulator.run_until_quiescent(self.max_events)
        emit_marker("protocol.phase", sim_time=simulator.now, phase="phase2")
        for node_id in node_ids:
            simulator.schedule_local(
                node_id, 0.0, nodes[node_id].start_phase2, label="phase2"
            )
        construction_events += simulator.run_until_quiescent(self.max_events)

        emit_marker(
            "protocol.phase", sim_time=simulator.now, phase="execution"
        )
        for node_id in node_ids:
            nodes[node_id].start_execution()
        for (source, destination), volume in sorted(self.traffic.items(), key=repr):
            if volume <= 0:
                continue
            node = nodes[source]
            simulator.schedule_local(
                source,
                0.0,
                lambda n=node, d=destination, v=volume: n.originate_flow(d, v),
                label="originate",
            )
        simulator.run_until_quiescent(self.max_events)

        # Trusting settlement: reported DATA4 is simply executed.
        received: Dict[NodeId, float] = {n: 0.0 for n in node_ids}
        charged: Dict[NodeId, float] = {n: 0.0 for n in node_ids}
        for node_id in node_ids:
            for payee, amount in nodes[node_id].report_payments().items():
                charged[node_id] += amount
                if payee in received:
                    received[payee] += amount

        utilities = {
            n: received[n] - charged[n] - nodes[n].incurred_cost for n in node_ids
        }
        return RunResult(
            progressed=True,
            utilities=utilities,
            detection=DetectionReport(),
            received=received,
            charged=charged,
            penalties={n: 0.0 for n in node_ids},
            incurred={n: nodes[n].incurred_cost for n in node_ids},
            metrics=simulator.metrics.summary(),
            construction_events=construction_events,
        )


@dataclass
class CheckedConstruction:
    """Result of a fully mirrored construction run (no bank, no traffic).

    The unit the checker-scaling benchmarks measure: every node both
    computes and checks all neighbours, and the run ends at phase-2
    quiescence with the quiescence-time mirror flags collected.
    """

    simulator: Simulator
    nodes: Dict[NodeId, FaithfulRoutingNode]
    phase1_events: int
    phase2_events: int
    flags: list
    #: Aggregated shared-replay counters (zeroed when sharing is off).
    kernel_stats: KernelStats

    @property
    def metrics(self) -> Dict[str, int]:
        """The simulator's aggregate work counters."""
        return self.simulator.metrics.summary()


def run_checked_construction(
    graph: ASGraph,
    link_delays=1.0,
    batch_delivery: bool = True,
    shared_checking: bool = True,
    max_events: int = 8_000_000,
    node_factory: Optional[FaithfulNodeFactory] = None,
) -> CheckedConstruction:
    """Drive both construction phases on a fully mirrored network.

    Every node is a :class:`FaithfulRoutingNode` checking all of its
    neighbours; there is no bank and no execution phase, so the result
    isolates exactly the checked-construction cost the shared replay
    kernel deduplicates.  ``shared_checking`` toggles the
    :class:`~repro.routing.kernel.MirrorKernelPool` (True) against the
    per-neighbour reference replay (False); both produce bit-identical
    flags and digests.  Returns the quiesced network plus the
    quiescence-time checkpoint flags of every mirror (empty for an
    obedient network).
    """
    graph.require_biconnected()
    simulator = Simulator(
        topology_from_graph(graph, delay=link_delays),
        trace_enabled=False,
        batch_delivery=batch_delivery,
    )
    pool = MirrorKernelPool() if shared_checking else None
    factory = node_factory or (
        lambda node_id, cost, signing: FaithfulRoutingNode(node_id, cost, signing)
    )
    nodes: Dict[NodeId, FaithfulRoutingNode] = {}
    for node_id in graph.nodes:
        node = factory(node_id, graph.cost(node_id), None)
        node.mirror_pool = pool
        nodes[node_id] = node
        simulator.add_node(node)
    node_ids = tuple(sorted(nodes, key=repr))

    emit_marker("protocol.phase", sim_time=simulator.now, phase="phase1")
    for node_id in node_ids:
        simulator.schedule_local(
            node_id, 0.0, nodes[node_id].start_phase1, label="phase1"
        )
    phase1_events = simulator.run_until_quiescent(max_events=max_events)

    for node_id in node_ids:
        nodes[node_id].prepare_checking(
            {
                neighbor: graph.neighbors(neighbor)
                for neighbor in graph.neighbors(node_id)
            }
        )
    if pool is not None:
        pool.new_epoch()
        emit_marker("mirror.epoch", sim_time=simulator.now)
    emit_marker("protocol.phase", sim_time=simulator.now, phase="phase2")
    for node_id in node_ids:
        simulator.schedule_local(
            node_id, 0.0, nodes[node_id].start_phase2, label="phase2"
        )
    phase2_events = simulator.run_until_quiescent(max_events=max_events)

    flags: list = []
    kernel_stats = pool.collected_stats() if pool is not None else KernelStats()
    for node_id in node_ids:
        for _principal, mirror in sorted(
            nodes[node_id].mirrors.items(), key=lambda kv: repr(kv[0])
        ):
            if mirror.comp is None:
                continue
            flags.extend(mirror.checkpoint_flags())
            # Forked and seed-mismatched mirrors replay privately;
            # their work lives on their own kernels, not the pool.
            private = mirror.private_kernel_stats()
            if private is not None:
                kernel_stats.merge(private)
    return CheckedConstruction(
        simulator=simulator,
        nodes=dict(nodes),
        phase1_events=phase1_events,
        phase2_events=phase2_events,
        flags=flags,
        kernel_stats=kernel_stats,
    )


def verify_checked_network(
    graph: ASGraph, checked: CheckedConstruction, check_oracle: bool = True
) -> None:
    """Assert a checked run converged correctly and consistently.

    Three layers: no mirror raised a flag at quiescence, every mirror's
    replayed digests equal its principal's own table digests (the
    BANK1/BANK2 comparison, without the bank), and — with
    ``check_oracle`` — every node's tables equal the centralized
    routing oracle.

    Raises
    ------
    ConvergenceError
        On the first flag, digest disagreement, or oracle mismatch.
    """
    if checked.flags:
        raise ConvergenceError(
            f"checked run raised {len(checked.flags)} flag(s): "
            f"{checked.flags[:3]!r}"
        )
    nodes = checked.nodes
    for node_id, node in nodes.items():
        for principal, mirror in node.mirrors.items():
            if mirror.comp is None:
                continue
            principal_comp = nodes[principal].comp
            assert principal_comp is not None
            if (
                mirror.routing_digest() != principal_comp.routing_digest()
                or mirror.pricing_digest() != principal_comp.pricing_digest()
            ):
                raise ConvergenceError(
                    f"mirror of {principal!r} at {node_id!r} disagrees "
                    f"with the principal's own tables"
                )
    if check_oracle:
        verify_against_oracle(graph, nodes)


def collect_construction_flags(
    nodes: Dict[NodeId, FaithfulRoutingNode]
) -> list:
    """Quiescence-time mirror flags across a network, stably ordered.

    Encodes each :class:`~repro.faithful.audit.Flag` via
    ``encode_flag`` after sorting by :meth:`~repro.faithful.audit.
    Flag.sort_key`, so two runs of one scenario can be compared for
    bit-identical detection output regardless of mirror iteration
    order.
    """
    from .node import encode_flag

    flags: list = []
    for node_id in sorted(nodes, key=repr):
        node = nodes[node_id]
        flags.extend(node.execution_flags)
        for _principal, mirror in sorted(
            node.mirrors.items(), key=lambda kv: repr(kv[0])
        ):
            flags.extend(mirror.flags)
    flags.sort(key=Flag.sort_key)
    return [encode_flag(f) for f in flags]
