"""The faithful FPSS extension: checkers, bank, execution, manipulations.

Implements Section 4 of the paper: principal/checker node roles
([PRINC1-2], [CHECK1-2]), the checkpointing bank ([BANK1-2]), the
execution phase with settlement and epsilon-above penalties, and the
catalogue of rational manipulations the extension defends against.
"""

from .audit import (
    CheckpointDecision,
    DetectionReport,
    Flag,
    FlagKind,
    SettlementRecord,
)
from .bank import BankNode
from .collusion import ComplicitCheckerMixin, coalition_factory
from .manipulations import (
    DEVIATION_CATALOGUE,
    ChargeUnderstateMixin,
    CopyAlterMixin,
    CopyDropMixin,
    CopySpoofMixin,
    CostLieMixin,
    DeviationMixin,
    DeviationSpec,
    FalsePriceAnnouncerMixin,
    FalseRouteAnnouncerMixin,
    LazyCheckerMixin,
    MisrouteMixin,
    PacketDropMixin,
    PaymentUnderreportMixin,
    PricingDigestLieMixin,
    RouteSuppressMixin,
    RoutingDigestLieMixin,
    construction_deviations,
    execution_deviations,
    faithful_deviant_factory,
    plain_deviant_factory,
)
from .epochs import (
    CHECKED_EVENT_KINDS,
    CheckedChurnRun,
    CheckedEpoch,
    run_checked_churn,
)
from .mirror import PrincipalMirror
from .node import (
    BANK_ID,
    KIND_BANK_REPORT,
    KIND_BANK_REQUEST,
    KIND_CHECKER_COPY,
    FaithfulRoutingNode,
    decode_flag,
    encode_flag,
)
from .protocol import (
    CheckedConstruction,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    RunResult,
    TrafficMatrix,
    collect_construction_flags,
    run_checked_construction,
    verify_checked_network,
)

__all__ = [
    "BANK_ID",
    "BankNode",
    "CHECKED_EVENT_KINDS",
    "ChargeUnderstateMixin",
    "CheckedChurnRun",
    "CheckedConstruction",
    "CheckedEpoch",
    "run_checked_churn",
    "CheckpointDecision",
    "collect_construction_flags",
    "run_checked_construction",
    "verify_checked_network",
    "ComplicitCheckerMixin",
    "coalition_factory",
    "CopyAlterMixin",
    "CopyDropMixin",
    "CopySpoofMixin",
    "CostLieMixin",
    "DEVIATION_CATALOGUE",
    "DetectionReport",
    "DeviationMixin",
    "DeviationSpec",
    "FaithfulFPSSProtocol",
    "FaithfulRoutingNode",
    "FalsePriceAnnouncerMixin",
    "FalseRouteAnnouncerMixin",
    "Flag",
    "FlagKind",
    "KIND_BANK_REPORT",
    "KIND_BANK_REQUEST",
    "KIND_CHECKER_COPY",
    "LazyCheckerMixin",
    "MisrouteMixin",
    "PacketDropMixin",
    "PaymentUnderreportMixin",
    "PlainFPSSProtocol",
    "PricingDigestLieMixin",
    "PrincipalMirror",
    "RouteSuppressMixin",
    "RoutingDigestLieMixin",
    "RunResult",
    "SettlementRecord",
    "TrafficMatrix",
    "construction_deviations",
    "decode_flag",
    "encode_flag",
    "execution_deviations",
    "faithful_deviant_factory",
    "plain_deviant_factory",
]
