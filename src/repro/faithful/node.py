"""The faithful FPSS participant: principal + checker in one node.

Reproduces: Section 4.2/4.3 of Shneidman & Parkes (PODC'04), "every
node in the biconnected network plays the role of both a principal
node and a checker node for all of its neighbors".  A
:class:`FaithfulRoutingNode` therefore extends the plain
:class:`~repro.routing.fpss.FPSSNode` with

* [PRINC1]/[PRINC2] message-passing duties: every received routing or
  pricing update is forwarded as a *checker copy* to all checkers
  (i.e. all neighbours) before the node recomputes and re-announces;
* [CHECK1]/[CHECK2] checker duties: a
  :class:`~repro.faithful.mirror.PrincipalMirror` per neighbour replays
  that neighbour's computation incrementally — through one
  :class:`~repro.routing.kernel.SharedKernel` per principal when a
  :class:`~repro.routing.kernel.MirrorKernelPool` is installed on
  :attr:`FaithfulRoutingNode.mirror_pool` — and accumulates flags;
* signed bank reporting for the BANK1/BANK2 checkpoints and the
  execution-phase settlement;
* execution-phase observation: each packet received from a neighbour
  is checked against the mirrored routing table (off-LCP forwarding is
  flagged), and originations are logged so the bank can verify DATA4.

Deviation seams inherited from :class:`FPSSNode` (declared cost,
broadcast contents, charges, hops, payment reports) plus the new
``forward_copy_to_checkers`` and digest-report seams are what the
manipulation catalogue overrides.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..routing.fpss import (
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
    FPSSNode,
    delta_size,
)
from ..routing.graph import Cost
from ..routing.kernel import MirrorKernelPool
from ..sim.crypto import SigningAuthority
from ..sim.messages import Message, NodeId
from .audit import Flag, FlagKind
from .mirror import PrincipalMirror

#: Message kinds added by the faithful extension.
KIND_CHECKER_COPY = "checker-copy"
KIND_BANK_REQUEST = "bank-request"
KIND_BANK_REPORT = "bank-report"

#: The bank's well-known node id.
BANK_ID = "__bank__"


def encode_flag(flag: Flag) -> Tuple:
    """Wire encoding of a flag for bank reports."""
    return (flag.kind.value, flag.checker, flag.principal, flag.phase, flag.detail)


def decode_flag(encoded: Sequence) -> Flag:
    """Inverse of :func:`encode_flag`."""
    kind, checker, principal, phase, detail = encoded
    return Flag(
        kind=FlagKind(kind),
        checker=checker,
        principal=principal,
        phase=phase,
        detail=tuple((k, v) for k, v in detail),
    )


class FaithfulRoutingNode(FPSSNode):
    """An FPSS node following the extended (faithful) specification."""

    def __init__(
        self,
        node_id: NodeId,
        true_cost: Cost,
        signing: Optional[SigningAuthority] = None,
    ) -> None:
        super().__init__(node_id, true_cost)
        self.signing = signing
        #: One mirror per neighbour-principal.
        self.mirrors: Dict[NodeId, PrincipalMirror] = {}
        #: Host-level shared-replay pool (one per simulator process),
        #: installed by the protocol driver.  ``None`` keeps every
        #: mirror on its private per-neighbour replay — the reference
        #: path standalone nodes and the equivalence tests use.
        self.mirror_pool: Optional[MirrorKernelPool] = None
        #: neighbour -> that neighbour's own neighbour set, provided by
        #: the checker-setup handshake before phase 2.
        self._neighbor_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = {}
        #: Execution-phase observations of flows originated by
        #: neighbours (this node as their first hop).
        self.observed_originations: Dict[Tuple[NodeId, NodeId], float] = {}
        self.execution_flags: List[Flag] = []
        #: Checker copies accumulated during the current delivery batch,
        #: coalesced into one multicast per batch at the flush boundary.
        self._pending_copies: List[Tuple[str, NodeId, Tuple]] = []
        self._pending_copy_size = 0

    # ------------------------------------------------------------------
    # checker setup
    # ------------------------------------------------------------------

    def prepare_checking(
        self, neighbor_neighbors: Mapping[NodeId, Sequence[NodeId]]
    ) -> None:
        """Install the connectivity each mirror needs to replay.

        Connectivity is semi-private type information: each link is
        common knowledge to its two endpoints, and the checker-setup
        handshake shares a principal's neighbour list with its
        checkers (who jointly observe all of its links anyway).
        """
        self._neighbor_neighbors = {
            neighbor: tuple(ns) for neighbor, ns in neighbor_neighbors.items()
        }

    # ------------------------------------------------------------------
    # phase 2 with mirrors
    # ------------------------------------------------------------------

    def start_phase2(self) -> None:
        """Reset mirrors, then start the principal-role computation.

        With a :attr:`mirror_pool` installed, each mirror is attached
        to the pool's shared kernel for its principal — but only when
        the pool confirms this checker's independently derived seed
        (principal neighbours, declared cost, converged DATA1) matches
        the kernel's; on a seed mismatch the mirror replays privately.
        """
        if self.comp is None:
            raise ProtocolError(f"{self.node_id!r} cannot enter phase 2 before 1")
        known_costs = self.comp.costs.as_dict()
        pool = self.mirror_pool
        for principal in self.neighbors:
            mirror = self.mirrors.get(principal)
            if mirror is None:
                mirror = PrincipalMirror(self.node_id, principal)
                self.mirrors[principal] = mirror
            principal_neighbors = self._neighbor_neighbors.get(principal)
            if principal_neighbors is None:
                raise ProtocolError(
                    f"{self.node_id!r} has no connectivity info for "
                    f"principal {principal!r}; call prepare_checking first"
                )
            declared = self.comp.costs.cost(principal)
            shared = None
            if pool is not None:
                shared = pool.acquire(
                    principal, principal_neighbors, declared, known_costs
                )
            mirror.start_phase2(
                principal_neighbors,
                declared_cost=declared,
                known_costs=known_costs,
                shared=shared,
            )
        super().start_phase2()

    # --- announcements are ledgered per principal ---------------------

    def announce_routes(self) -> None:
        """Broadcast the routing delta, ledgering a copy-return per
        neighbour so dropped/altered checker copies are detectable."""
        vector = self._next_route_announcement()
        for neighbor in self.neighbors:
            mirror = self.mirrors.get(neighbor)
            if mirror is not None and mirror.comp is not None:
                mirror.record_sent(KIND_RT_UPDATE, vector)
        self.multicast(
            self.neighbors, KIND_RT_UPDATE, size_hint=delta_size(vector), vector=vector
        )

    def announce_prices(self) -> None:
        """Broadcast the pricing delta with the same ledgering."""
        vector = self._next_price_announcement()
        for neighbor in self.neighbors:
            mirror = self.mirrors.get(neighbor)
            if mirror is not None and mirror.comp is not None:
                mirror.record_sent(KIND_PRICE_UPDATE, vector)
        self.multicast(
            self.neighbors,
            KIND_PRICE_UPDATE,
            size_hint=delta_size(vector),
            vector=vector,
        )

    # --- checker observation of the sender's broadcasts ---------------

    def on_rt_update(self, message: Message) -> None:
        """Check the broadcast against the sender's mirror, then act.

        Any copies of the sender's batch still awaiting replay are
        flushed first: on the FIFO link they precede the broadcast they
        triggered, so the expected-broadcast queue is current by the
        time the comparison runs.
        """
        if self.phase == "phase2":
            mirror = self.mirrors.get(message.src)
            if mirror is not None and mirror.comp is not None:
                self._flush_mirror(mirror)
                mirror.observe_route_broadcast(message.payload["vector"])
        super().on_rt_update(message)

    def on_price_update(self, message: Message) -> None:
        """Check the broadcast against the sender's mirror, then act."""
        if self.phase == "phase2":
            mirror = self.mirrors.get(message.src)
            if mirror is not None and mirror.comp is not None:
                self._flush_mirror(mirror)
                mirror.observe_price_broadcast(message.payload["vector"])
        super().on_price_update(message)

    def _flush_mirror(self, mirror: PrincipalMirror) -> None:
        """Run a mirror's deferred replay, accounting the computation.

        A checker computation is recorded only when the mirror actually
        executed the relaxation here — replays satisfied from a shared
        kernel's op log cost a cursor advance, not a computation, which
        is exactly the dedup the overhead metrics should show.
        """
        if mirror.flush_pending():
            self.sim.metrics.record_computation(self.node_id, as_checker=True)

    def flush_batch(self) -> None:
        """Batch boundary: send the coalesced checker-copy bundle,
        replay every mirror with pending copies, then run the own
        (principal-role) recomputation.

        The bundle goes out first: on the FIFO link it must precede the
        broadcasts the same batch triggers (sent by the super call), so
        receivers always ingest a principal's claimed inputs before
        observing the broadcast derived from them.
        """
        if self._pending_copies:
            copies = tuple(self._pending_copies)
            self._pending_copies.clear()
            size = self._pending_copy_size
            self._pending_copy_size = 0
            self._send_copy_bundle(copies, size)
        for principal in self.neighbors:
            mirror = self.mirrors.get(principal)
            if mirror is not None and mirror.comp is not None:
                self._flush_mirror(mirror)
        super().flush_batch()

    # --- principal duty: forward copies before recomputing ------------

    def after_route_input(self, message: Message) -> None:
        """[PRINC1] message passing: copy the input to all checkers."""
        # The delivered message's size is already cached from its own
        # transmission; a copy adds two scalars (orig_kind, orig_src).
        self._copy_size_hint = message.size + 2
        self.forward_copy_to_checkers(
            KIND_RT_UPDATE, message.src, message.payload["vector"]
        )

    def after_price_input(self, message: Message) -> None:
        """[PRINC2] message passing: copy the input to all checkers."""
        self._copy_size_hint = message.size + 2
        self.forward_copy_to_checkers(
            KIND_PRICE_UPDATE, message.src, message.payload["vector"]
        )

    def forward_copy_to_checkers(
        self, orig_kind: str, orig_src: NodeId, vector: Tuple
    ) -> None:
        """Send a checker copy of a received update to every neighbour.

        Deviation seam: drop/alter/spoof variants override this (the
        message-passing manipulations 1 and 3 of Section 4.3).
        """
        # Copies dominate checked-network traffic; the input handler
        # stashes the delivered message's cached size so the forward
        # path never re-walks the payload.  Deviant overrides that
        # substitute a vector keep the row shape (scaled costs), so the
        # per-row delta formula covers any path without a stash.
        size_hint = self.__dict__.pop("_copy_size_hint", None)
        if size_hint is None:
            size_hint = delta_size(vector) + 2
        entry = (orig_kind, orig_src, vector)
        if self._in_batch:
            self._pending_copies.append(entry)
            self._pending_copy_size += size_hint
            return
        self._send_copy_bundle((entry,), size_hint)

    def _send_copy_bundle(
        self, copies: Tuple[Tuple[str, NodeId, Tuple], ...], size_hint: int
    ) -> None:
        """Multicast one checker-copy message carrying ``copies`` entries."""
        self.sim.metrics.record_uncoalesced_copies(
            len(copies) * len(self.neighbors)
        )
        self.multicast(
            self.neighbors,
            KIND_CHECKER_COPY,
            size_hint=size_hint,
            copies=copies,
        )

    # --- checker duty: replay copies -----------------------------------

    def on_checker_copy(self, message: Message) -> None:
        """[CHECK1]/[CHECK2]: replay the principal's claimed input.

        In a delivery batch the copy is only ingested; the mirror
        relaxation runs once per batch (before any broadcast of the
        same principal is observed, or at the batch boundary).
        """
        if self.phase != "phase2":
            return
        mirror = self.mirrors.get(message.src)
        if mirror is None or mirror.comp is None:
            return
        if self._in_batch:
            for orig_kind, orig_src, vector in message.payload["copies"]:
                mirror.apply_copy(orig_kind, orig_src, vector, defer=True)
            return
        ran = False
        for orig_kind, orig_src, vector in message.payload["copies"]:
            if mirror.apply_copy(orig_kind, orig_src, vector):
                ran = True
        if ran:
            self.sim.metrics.record_computation(self.node_id, as_checker=True)

    # ------------------------------------------------------------------
    # execution phase observation
    # ------------------------------------------------------------------

    def observe_packet(self, message: Message) -> None:
        """Checker-side packet validation against the sender's mirror."""
        sender = message.src
        mirror = self.mirrors.get(sender)
        if mirror is None or mirror.comp is None:
            return
        origin = message.payload["origin"]
        destination = message.payload["destination"]
        volume = message.payload["volume"]
        if sender == origin:
            flow = (origin, destination)
            self.observed_originations[flow] = (
                self.observed_originations.get(flow, 0.0) + volume
            )
        # computation() settles the mirror to its own replay position
        # (a shared kernel may sit ahead of a mirror that stopped
        # replaying), so validation uses exactly this checker's state.
        entry = mirror.computation().routing.entry(destination)
        expected_next = entry.path[1] if entry is not None and len(entry.path) >= 2 else None
        if expected_next != self.node_id:
            self.execution_flags.append(
                Flag.make(
                    FlagKind.MISROUTE,
                    checker=self.node_id,
                    principal=sender,
                    phase="execution",
                    origin=origin,
                    destination=destination,
                    expected_next=expected_next,
                )
            )

    # ------------------------------------------------------------------
    # bank channel
    # ------------------------------------------------------------------

    def _send_bank_report(self, stage: str, **payload: Any) -> None:
        message = Message(
            src=self.node_id,
            dst=BANK_ID,
            kind=KIND_BANK_REPORT,
            payload={"stage": stage, **payload},
        )
        if self.signing is not None:
            message = self.signing.sign(self.node_id, message)
        self.send_message(message)

    def on_bank_request(self, message: Message) -> None:
        """Answer a signed bank query for the current checkpoint."""
        if self.signing is not None:
            self.signing.require_valid(BANK_ID, message)
        stage = message.payload["stage"]
        if stage == "phase1":
            self._send_bank_report(stage, cost_digest=self.report_cost_digest())
        elif stage == "bank1":
            flags = []
            for mirror in self.mirrors.values():
                flags.extend(mirror.checkpoint_flags())
            self._send_bank_report(
                stage,
                routing_digest=self.report_routing_digest(),
                mirror_routing=[
                    (principal, mirror.routing_digest())
                    for principal, mirror in sorted(
                        self.mirrors.items(), key=lambda kv: repr(kv[0])
                    )
                    if mirror.comp is not None
                ],
                flags=[encode_flag(f) for f in flags],
            )
        elif stage == "bank2":
            self._send_bank_report(
                stage,
                pricing_digest=self.report_pricing_digest(),
                mirror_pricing=[
                    (principal, mirror.pricing_digest())
                    for principal, mirror in sorted(
                        self.mirrors.items(), key=lambda kv: repr(kv[0])
                    )
                    if mirror.comp is not None
                ],
                flags=[],
            )
        elif stage == "execution":
            self._send_bank_report(stage, **self.execution_report())
        else:
            raise ProtocolError(f"unknown bank stage {stage!r}")

    # --- reporting seams (deviants may lie here) -----------------------

    def report_cost_digest(self) -> str:
        """DATA1 digest reported at the phase-1 checkpoint."""
        assert self.comp is not None
        return self.comp.cost_digest()

    def report_routing_digest(self) -> str:
        """Own DATA2 digest reported at BANK1."""
        assert self.comp is not None
        return self.comp.routing_digest()

    def report_pricing_digest(self) -> str:
        """Own DATA3* digest reported at BANK2."""
        assert self.comp is not None
        return self.comp.pricing_digest()

    def execution_report(self) -> Dict[str, Any]:
        """Everything the bank needs from this node for settlement."""
        observations = []
        for (origin, destination), volume in sorted(
            self.observed_originations.items(), key=repr
        ):
            mirror = self.mirrors.get(origin)
            if mirror is None or mirror.comp is None:
                continue
            replayed = mirror.computation()
            entry = replayed.routing.entry(destination)
            if entry is None:
                continue
            charges = [
                (transit, replayed.pricing.price(destination, transit) * volume)
                for transit in entry.path[1:-1]
            ]
            observations.append(
                (origin, destination, volume, entry.path, charges)
            )
        return {
            "reported_payments": sorted(
                self.report_payments().items(), key=repr
            ),
            "receipts": [
                (origin, destination, sender, volume)
                for (origin, destination), senders in sorted(
                    self.receipts.items(), key=repr
                )
                for sender, volume in sorted(senders.items(), key=repr)
            ],
            "delivered": [
                (origin, destination, volume)
                for (origin, destination), volume in sorted(
                    self.delivered.items(), key=repr
                )
            ],
            "observations": observations,
            "flags": [encode_flag(f) for f in self.execution_flags],
        }
