"""The bank: trusted checkpointing and settlement entity.

"Our bank goes beyond whatever accounting and charging mechanisms are
used to enforce the pricing scheme.  In our specification, the bank is
a trusted and obedient entity that can also perform simple comparisons,
and enforce penalties when it detects a problem" (Section 4.2).  The
bank does **not** perform the mechanism computation; it only compares
hashes and logs produced by principals and checkers:

* **phase-1 checkpoint** — collect a DATA1 digest from every node; the
  phase's goal is "common transit cost tables across all nodes", so
  any disagreement orders a restart;
* **BANK1** — collect each principal's DATA2 digest and every
  checker's mirrored DATA2 digest; any difference inside a principal's
  group (or any checker flag) orders a phase restart;
* **BANK2** — the same for DATA3* (prices *and* identity tags), then
  green-light the execution phase;
* **settlement** — reconcile reported DATA4 payment lists against the
  flows checkers observed, pay transit nodes, and charge penalties
  "epsilon-above the attempted deviation".

All bank <-> node messages are signed (Section 4.2); inside the
simulator the bank is a *well-known* node reachable without a topology
link, modelling the paper's out-of-band signed channel.

Settlement trusts *receipt* logs (what a node says it received) but
never *forwarding claims*: the paper's signed acknowledgments make
receipts non-repudiable, so a node that actually forwarded can always
prove it, and a claim of forwarding without the matching receipt is
disbelieved.  The simulator's reliable links make receiver logs ground
truth, so this models exactly the ack-backed scheme.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..obs.trace import span
from ..sim.crypto import SigningAuthority
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode
from .audit import CheckpointDecision, Flag, FlagKind, SettlementRecord
from .node import BANK_ID, KIND_BANK_REQUEST, decode_flag


class BankNode(ProtocolNode):
    """The obedient checkpointing node (well-known to everyone)."""

    def __init__(
        self, signing: Optional[SigningAuthority] = None, node_id: NodeId = BANK_ID
    ) -> None:
        super().__init__(node_id)
        self.signing = signing
        #: stage -> node -> report payload.
        self.reports: Dict[str, Dict[NodeId, Mapping[str, Any]]] = {}

    # ------------------------------------------------------------------
    # request/collect
    # ------------------------------------------------------------------

    def request_reports(self, stage: str, node_ids: Sequence[NodeId]) -> None:
        """Send a signed report request to the given nodes."""
        self.reports[stage] = {}
        for node_id in sorted(node_ids, key=repr):
            message = Message(
                src=self.node_id,
                dst=node_id,
                kind=KIND_BANK_REQUEST,
                payload={"stage": stage},
            )
            if self.signing is not None:
                message = self.signing.sign(self.node_id, message)
            self.send_message(message)

    def on_bank_report(self, message: Message) -> None:
        """Collect one signed node report."""
        if self.signing is not None:
            self.signing.require_valid(message.src, message)
        stage = message.payload["stage"]
        self.reports.setdefault(stage, {})[message.src] = dict(message.payload)

    def _stage_reports(self, stage: str) -> Dict[NodeId, Mapping[str, Any]]:
        if stage not in self.reports:
            raise ProtocolError(f"no reports collected for stage {stage!r}")
        return self.reports[stage]

    # ------------------------------------------------------------------
    # checkpoint decisions
    # ------------------------------------------------------------------

    def decide_phase1(self, node_ids: Sequence[NodeId]) -> CheckpointDecision:
        """All DATA1 digests must agree across the whole network."""
        reports = self._stage_reports("phase1")
        digests = {n: reports[n]["cost_digest"] for n in node_ids if n in reports}
        missing = [n for n in node_ids if n not in reports]
        distinct = set(digests.values())
        green = not missing and len(distinct) <= 1
        suspects: List[NodeId] = []
        if len(distinct) > 1:
            # The minority digest holders are the suspects.
            by_digest: Dict[str, List[NodeId]] = {}
            for node, digest in digests.items():
                by_digest.setdefault(digest, []).append(node)
            majority = max(by_digest.values(), key=len)
            suspects = sorted(
                (n for group in by_digest.values() if group is not majority for n in group),
                key=repr,
            )
        return CheckpointDecision(
            checkpoint="phase1",
            green_light=green,
            suspects=suspects + sorted(missing, key=repr),
            digest_groups={"__all__": digests} if digests else {},
        )

    def _decide_group_stage(
        self,
        stage: str,
        own_key: str,
        mirror_key: str,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """Shared BANK1/BANK2 logic: per-principal digest groups.

        For each principal the group contains the principal's own
        digest plus every checker's mirrored digest; all members must
        be equal.  Checker flags also veto the green light unless
        ``honor_flags`` is disabled (an ablation: digest comparison
        alone misses update *suppression*, where the principal's own
        tables and every mirror agree but neighbours were starved).
        """
        reports = self._stage_reports(stage)
        suspects: List[NodeId] = []
        flags: List[Flag] = []
        digest_groups: Dict[NodeId, Dict[NodeId, str]] = {}

        if honor_flags:
            for _node_id, report in reports.items():
                for encoded in report.get("flags", ()):
                    flags.append(decode_flag(encoded))

        for principal, checkers in sorted(checker_map.items(), key=repr):
            group: Dict[NodeId, str] = {}
            principal_report = reports.get(principal)
            if principal_report is None:
                suspects.append(principal)
                continue
            group[principal] = principal_report[own_key]
            for checker in checkers:
                checker_report = reports.get(checker)
                if checker_report is None:
                    suspects.append(checker)
                    continue
                mirror_digests = dict(checker_report.get(mirror_key, ()))
                if principal in mirror_digests:
                    group[checker] = mirror_digests[principal]
            digest_groups[principal] = group
            if len(set(group.values())) > 1:
                suspects.append(principal)
                flags.append(
                    Flag.make(
                        FlagKind.DIGEST_MISMATCH,
                        checker=None,
                        principal=principal,
                        phase=stage,
                    )
                )

        for flag in flags:
            if flag.principal not in suspects:
                suspects.append(flag.principal)

        green = not suspects and not flags
        return CheckpointDecision(
            checkpoint=stage,
            green_light=green,
            suspects=sorted(set(suspects), key=repr),
            flags=flags,
            digest_groups=digest_groups,
        )

    def decide_bank1(
        self,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """[BANK1]: routing tables (DATA2) comparison."""
        return self._decide_group_stage(
            "bank1",
            "routing_digest",
            "mirror_routing",
            checker_map,
            honor_flags=honor_flags,
        )

    def decide_bank2(
        self,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """[BANK2]: pricing tables (DATA3*, tags included) comparison."""
        return self._decide_group_stage(
            "bank2",
            "pricing_digest",
            "mirror_pricing",
            checker_map,
            honor_flags=honor_flags,
        )

    # ------------------------------------------------------------------
    # execution settlement
    # ------------------------------------------------------------------

    def settle(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        epsilon: float = 0.01,
        tolerance: float = 1e-9,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag]]:
        """Reconcile execution reports into enforced transfers.

        Returns per-node settlement records (received / charged /
        penalties) and the flags raised during reconciliation.
        """
        # The bank can settle without ever being attached to a
        # simulator (unit-level reconciliation); sim-time is optional.
        sim_time = self.now if self._sim is not None else None
        with span(
            "bank.settle", sim_time=sim_time, nodes=len(node_ids)
        ) as settle_span:
            records, flags = self._settle_impl(
                node_ids, declared_costs, epsilon, tolerance
            )
            settle_span.note(flags=len(flags))
        return records, flags

    def _settle_impl(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        epsilon: float,
        tolerance: float,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag]]:
        reports = self._stage_reports("execution")
        records: Dict[NodeId, SettlementRecord] = {
            n: SettlementRecord() for n in node_ids
        }
        flags: List[Flag] = []

        receipts: Dict[NodeId, Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]] = {}
        for node_id in node_ids:
            table: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]] = {}
            for origin, destination, sender, volume in reports.get(node_id, {}).get(
                "receipts", ()
            ):
                table.setdefault((origin, destination), {})[sender] = volume
            receipts[node_id] = table

        # Checker-reported misroute flags feed straight into penalties.
        for node_id in node_ids:
            for encoded in reports.get(node_id, {}).get("flags", ()):
                flag = decode_flag(encoded)
                flags.append(flag)
                records[flag.principal].penalties += epsilon

        # Reconcile each observed origination (first-hop checker data).
        expected_charges: Dict[NodeId, Dict[NodeId, float]] = {
            n: {} for n in node_ids
        }
        for checker_id in sorted(node_ids, key=repr):
            for origin, destination, volume, path, charges in reports.get(
                checker_id, {}
            ).get("observations", ()):
                path = tuple(path)
                charge_map = dict(charges)
                flow = (origin, destination)
                culprit = self._walk_flow(
                    flow, volume, path, receipts, records, flags, epsilon
                )
                # The origin owes the charges for segments that were
                # actually carried; a misrouting origin is charged the
                # full expected amount anyway (clawback) plus epsilon.
                carried_charges = 0.0
                for index, transit in enumerate(path[1:-1], start=1):
                    successor = path[index + 1]
                    carried = receipts.get(successor, {}).get(flow, {}).get(transit, 0.0)
                    if carried > 0:
                        amount = charge_map.get(transit, 0.0)
                        records[transit].received += amount
                        expected_charges[origin][transit] = (
                            expected_charges[origin].get(transit, 0.0) + amount
                        )
                        carried_charges += amount
                if culprit == origin:
                    full = sum(charge_map.values())
                    shortfall = max(0.0, full - carried_charges)
                    records[origin].charged += carried_charges + shortfall
                    records[origin].penalties += epsilon
                    self._reimburse_off_path(
                        flow, path, receipts, records, declared_costs,
                        node_ids, funded_by=culprit,
                    )
                else:
                    records[origin].charged += carried_charges
                    if culprit is not None:
                        self._reimburse_off_path(
                            flow, path, receipts, records, declared_costs,
                            node_ids, funded_by=culprit,
                        )

        # Compare reported DATA4 totals against enforced charges.
        for node_id in sorted(node_ids, key=repr):
            reported = dict(reports.get(node_id, {}).get("reported_payments", ()))
            reported_total = sum(reported.values())
            expected_total = sum(expected_charges[node_id].values())
            record = records[node_id]
            record.reported_total = reported_total
            record.expected_total = expected_total
            if reported_total < expected_total - tolerance:
                shortfall = expected_total - reported_total
                record.penalties += shortfall + epsilon
                flags.append(
                    Flag.make(
                        FlagKind.PAYMENT_UNDERREPORT,
                        checker=None,
                        principal=node_id,
                        phase="execution",
                        shortfall=shortfall,
                    )
                )
        return records, flags

    def _walk_flow(
        self,
        flow: Tuple[NodeId, NodeId],
        volume: float,
        path: Tuple[NodeId, ...],
        receipts: Mapping[NodeId, Mapping],
        records: Dict[NodeId, SettlementRecord],
        flags: List[Flag],
        epsilon: float,
    ) -> Optional[NodeId]:
        """Trace a flow along its certified path; penalise the first
        node that failed to hand it to the expected successor.

        Returns the culprit (None when the flow completed cleanly).
        """
        previous = path[0]
        for node in path[1:]:
            received = receipts.get(node, {}).get(flow, {}).get(previous, 0.0)
            if received <= 0:
                misrouted = any(
                    receipts.get(other, {}).get(flow, {}).get(previous, 0.0) > 0
                    for other in records
                    if other != node
                )
                kind = FlagKind.MISROUTE if misrouted else FlagKind.PACKET_DROP
                # The culprit's payment is already denied (it is not in
                # the carried set); the epsilon puts it strictly below
                # the faithful outcome.
                records[previous].penalties += epsilon
                flags.append(
                    Flag.make(
                        kind,
                        checker=None,
                        principal=previous,
                        phase="execution",
                        origin=flow[0],
                        destination=flow[1],
                        volume=volume,
                    )
                )
                return previous
            previous = node
        return None

    def _reimburse_off_path(
        self,
        flow: Tuple[NodeId, NodeId],
        certified_path: Tuple[NodeId, ...],
        receipts: Mapping[NodeId, Mapping],
        records: Dict[NodeId, SettlementRecord],
        declared_costs: Mapping[NodeId, float],
        node_ids: Sequence[NodeId],
        funded_by: NodeId,
    ) -> None:
        """Pay innocent off-LCP carriers their declared cost.

        When a flow was diverted off the certified path, nodes that
        carried it in good faith (they forwarded per their own correct
        tables) are reimbursed at declared cost so the deviation never
        externalises losses onto the obedient — and the *culprit* funds
        the reimbursement (its penalty covers the harm it caused, on
        top of the epsilon), keeping the settlement money-conserving.
        """
        on_path = set(certified_path)
        origin, destination = flow
        for node_id in node_ids:
            if node_id in on_path or node_id == destination:
                continue
            volume_in = sum(receipts.get(node_id, {}).get(flow, {}).values())
            if volume_in > 0:
                reimbursement = declared_costs.get(node_id, 0.0) * volume_in
                records[node_id].received += reimbursement
                records[funded_by].penalties += reimbursement
