"""The bank: trusted checkpointing and settlement entity.

"Our bank goes beyond whatever accounting and charging mechanisms are
used to enforce the pricing scheme.  In our specification, the bank is
a trusted and obedient entity that can also perform simple comparisons,
and enforce penalties when it detects a problem" (Section 4.2).  The
bank does **not** perform the mechanism computation; it only compares
hashes and logs produced by principals and checkers:

* **phase-1 checkpoint** — collect a DATA1 digest from every node; the
  phase's goal is "common transit cost tables across all nodes", so
  any disagreement orders a restart;
* **BANK1** — collect each principal's DATA2 digest and every
  checker's mirrored DATA2 digest; any difference inside a principal's
  group (or any checker flag) orders a phase restart;
* **BANK2** — the same for DATA3* (prices *and* identity tags), then
  green-light the execution phase;
* **settlement** — reconcile reported DATA4 payment lists against the
  flows checkers observed, pay transit nodes, and charge penalties
  "epsilon-above the attempted deviation".

All bank <-> node messages are signed (Section 4.2); inside the
simulator the bank is a *well-known* node reachable without a topology
link, modelling the paper's out-of-band signed channel.

Settlement trusts *receipt* logs (what a node says it received) but
never *forwarding claims*: the paper's signed acknowledgments make
receipts non-repudiable, so a node that actually forwarded can always
prove it, and a claim of forwarding without the matching receipt is
disbelieved.  The simulator's reliable links make receiver logs ground
truth, so this models exactly the ack-backed scheme.

Settlement engines
------------------
Two engines reconcile the execution reports:

* :meth:`BankNode.settle_per_flow` — the reference: walk every
  observed origination one at a time, re-tracing its certified path.
  Retained as the property-tested oracle.
* :meth:`BankNode._settle_impl` (behind :meth:`BankNode.settle` and
  :meth:`BankNode.settle_netted`) — the columnar engine: receipts are
  ingested once into flat tables keyed by interned ``(origin,
  destination)`` flow ids, observations land in parallel arrays and
  are *grouped* by (flow, certified path), so the path walk, the
  carried mask, and the off-path reimbursement scan run once per group
  instead of once per observation row.

Both engines append every monetary effect to a per-node contribution
list and materialise records with :func:`math.fsum`, which is exactly
rounded: two engines producing the same *multiset* of contributions
produce bit-identical records regardless of accumulation order.  That
is the equivalence contract ``tests/faithful/test_settlement_
equivalence.py`` enforces across the manipulation catalogue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..obs.trace import emit_counters, span
from ..sim.crypto import SigningAuthority
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode
from .audit import CheckpointDecision, Flag, FlagKind, SettlementRecord
from .node import BANK_ID, KIND_BANK_REQUEST, decode_flag
from .settlement import BatchTransfer, NettingLedger, forced_settlement


class _SettlementTally:
    """Exact (order-independent) accumulation of settlement money.

    Every monetary effect is appended as one contribution;
    :meth:`BankNode._finalize_settlement` reduces each per-node list
    with :func:`math.fsum`.  fsum is exactly rounded over its input
    multiset, so any two settlement engines that generate the same
    multiset of contributions per node and field produce bit-identical
    :class:`~repro.faithful.audit.SettlementRecord` values — the
    mechanism behind the per-flow/columnar equivalence tests.
    """

    __slots__ = ("received", "charged", "penalties", "expected")

    def __init__(self, node_ids: Sequence[NodeId]) -> None:
        self.received: Dict[NodeId, List[float]] = {n: [] for n in node_ids}
        self.charged: Dict[NodeId, List[float]] = {n: [] for n in node_ids}
        self.penalties: Dict[NodeId, List[float]] = {n: [] for n in node_ids}
        #: Per-origin enforced charge contributions (DATA4 comparison).
        self.expected: Dict[NodeId, List[float]] = {n: [] for n in node_ids}


@dataclass
class SettlementStats:
    """Work counters of one settlement pass (telemetry and gates)."""

    #: Observation rows reconciled (one per observed origination).
    flows_settled: int = 0
    #: Distinct (flow id, certified path) groups the rows collapsed to.
    flow_groups: int = 0
    #: Individual origin-to-transit payment rows the per-flow scheme
    #: would execute — the denominator of the netting compression gate.
    transfer_records: int = 0
    #: The per-flow transfer list (payer, payee, amount), collected
    #: only when the caller nets (``collect_transfers=True``).
    transfers: Optional[List[Tuple[NodeId, NodeId, float]]] = None


@dataclass
class NettedSettlement:
    """Everything :meth:`BankNode.settle_netted` produced."""

    records: Dict[NodeId, SettlementRecord]
    flags: List[Flag]
    #: One lump-sum transfer per net debtor for this epoch.
    transfers: List[BatchTransfer]
    #: The ledger holding the signed obligation trace (audit input).
    ledger: NettingLedger
    flows_settled: int = 0
    flow_groups: int = 0
    transfer_records: int = 0
    #: The un-netted per-flow transfer list the obligations came from.
    per_flow_transfers: List[Tuple[NodeId, NodeId, float]] = field(
        default_factory=list
    )

    @property
    def net_payouts(self) -> int:
        """Total payout rows across the epoch's batch transfers."""
        return sum(len(transfer.payouts) for transfer in self.transfers)


class BankNode(ProtocolNode):
    """The obedient checkpointing node (well-known to everyone)."""

    def __init__(
        self, signing: Optional[SigningAuthority] = None, node_id: NodeId = BANK_ID
    ) -> None:
        super().__init__(node_id)
        self.signing = signing
        #: stage -> node -> report payload.
        self.reports: Dict[str, Dict[NodeId, Mapping[str, Any]]] = {}
        #: Settlement deposits (Concent-style escrow backing forced
        #: payment when an audited debtor stops paying).
        self.deposits: Dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    # request/collect
    # ------------------------------------------------------------------

    def request_reports(self, stage: str, node_ids: Sequence[NodeId]) -> None:
        """Send a signed report request to the given nodes."""
        self.reports[stage] = {}
        for node_id in sorted(node_ids, key=repr):
            message = Message(
                src=self.node_id,
                dst=node_id,
                kind=KIND_BANK_REQUEST,
                payload={"stage": stage},
            )
            if self.signing is not None:
                message = self.signing.sign(self.node_id, message)
            self.send_message(message)

    def on_bank_report(self, message: Message) -> None:
        """Collect one signed node report."""
        if self.signing is not None:
            self.signing.require_valid(message.src, message)
        stage = message.payload["stage"]
        self.reports.setdefault(stage, {})[message.src] = dict(message.payload)

    def _stage_reports(self, stage: str) -> Dict[NodeId, Mapping[str, Any]]:
        if stage not in self.reports:
            raise ProtocolError(f"no reports collected for stage {stage!r}")
        return self.reports[stage]

    # ------------------------------------------------------------------
    # deposits
    # ------------------------------------------------------------------

    def fund_deposit(self, node_id: NodeId, amount: float) -> None:
        """Credit a node's settlement deposit."""
        if amount < 0:
            raise ProtocolError(f"deposit amount must be >= 0, got {amount}")
        self.deposits[node_id] = self.deposits.get(node_id, 0.0) + amount

    def deposit_balance(self, node_id: NodeId) -> float:
        """A node's current deposit balance (0 when never funded)."""
        return self.deposits.get(node_id, 0.0)

    # ------------------------------------------------------------------
    # checkpoint decisions
    # ------------------------------------------------------------------

    def decide_phase1(self, node_ids: Sequence[NodeId]) -> CheckpointDecision:
        """All DATA1 digests must agree across the whole network."""
        reports = self._stage_reports("phase1")
        digests = {n: reports[n]["cost_digest"] for n in node_ids if n in reports}
        missing = [n for n in node_ids if n not in reports]
        distinct = set(digests.values())
        green = not missing and len(distinct) <= 1
        suspects: List[NodeId] = []
        if len(distinct) > 1:
            # The minority digest holders are the suspects.
            by_digest: Dict[str, List[NodeId]] = {}
            for node, digest in digests.items():
                by_digest.setdefault(digest, []).append(node)
            majority = max(by_digest.values(), key=len)
            suspects = sorted(
                (n for group in by_digest.values() if group is not majority for n in group),
                key=repr,
            )
        return CheckpointDecision(
            checkpoint="phase1",
            green_light=green,
            suspects=suspects + sorted(missing, key=repr),
            digest_groups={"__all__": digests} if digests else {},
        )

    def _decide_group_stage(
        self,
        stage: str,
        own_key: str,
        mirror_key: str,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """Shared BANK1/BANK2 logic: per-principal digest groups.

        For each principal the group contains the principal's own
        digest plus every checker's mirrored digest; all members must
        be equal.  Checker flags also veto the green light unless
        ``honor_flags`` is disabled (an ablation: digest comparison
        alone misses update *suppression*, where the principal's own
        tables and every mirror agree but neighbours were starved).
        """
        reports = self._stage_reports(stage)
        suspects: List[NodeId] = []
        flags: List[Flag] = []
        digest_groups: Dict[NodeId, Dict[NodeId, str]] = {}

        if honor_flags:
            for _node_id, report in reports.items():
                for encoded in report.get("flags", ()):
                    flags.append(decode_flag(encoded))

        for principal, checkers in sorted(checker_map.items(), key=repr):
            group: Dict[NodeId, str] = {}
            principal_report = reports.get(principal)
            if principal_report is None:
                suspects.append(principal)
                continue
            group[principal] = principal_report[own_key]
            for checker in checkers:
                checker_report = reports.get(checker)
                if checker_report is None:
                    suspects.append(checker)
                    continue
                mirror_digests = dict(checker_report.get(mirror_key, ()))
                if principal in mirror_digests:
                    group[checker] = mirror_digests[principal]
            digest_groups[principal] = group
            if len(set(group.values())) > 1:
                suspects.append(principal)
                flags.append(
                    Flag.make(
                        FlagKind.DIGEST_MISMATCH,
                        checker=None,
                        principal=principal,
                        phase=stage,
                    )
                )

        for flag in flags:
            if flag.principal not in suspects:
                suspects.append(flag.principal)

        green = not suspects and not flags
        return CheckpointDecision(
            checkpoint=stage,
            green_light=green,
            suspects=sorted(set(suspects), key=repr),
            flags=flags,
            digest_groups=digest_groups,
        )

    def decide_bank1(
        self,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """[BANK1]: routing tables (DATA2) comparison."""
        return self._decide_group_stage(
            "bank1",
            "routing_digest",
            "mirror_routing",
            checker_map,
            honor_flags=honor_flags,
        )

    def decide_bank2(
        self,
        checker_map: Mapping[NodeId, Sequence[NodeId]],
        honor_flags: bool = True,
    ) -> CheckpointDecision:
        """[BANK2]: pricing tables (DATA3*, tags included) comparison."""
        return self._decide_group_stage(
            "bank2",
            "pricing_digest",
            "mirror_pricing",
            checker_map,
            honor_flags=honor_flags,
        )

    # ------------------------------------------------------------------
    # execution settlement
    # ------------------------------------------------------------------

    def settle(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        epsilon: float = 0.01,
        tolerance: float = 1e-9,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag]]:
        """Reconcile execution reports into enforced transfers.

        Runs the columnar engine; returns per-node settlement records
        (received / charged / penalties) and the flags raised during
        reconciliation, bit-identical to :meth:`settle_per_flow`.
        """
        # The bank can settle without ever being attached to a
        # simulator (unit-level reconciliation); sim-time is optional.
        sim_time = self.now if self._sim is not None else None
        with span(
            "bank.settle", sim_time=sim_time, nodes=len(node_ids)
        ) as settle_span:
            records, flags, stats = self._settle_impl(
                node_ids, declared_costs, epsilon, tolerance
            )
            settle_span.note(flags=len(flags))
            emit_counters(
                "bank",
                {
                    "settles": 1,
                    "flows_settled": stats.flows_settled,
                    "flow_groups": stats.flow_groups,
                    "transfer_records": stats.transfer_records,
                    "settlement_flags": len(flags),
                },
                sim_time=sim_time,
            )
        return records, flags

    def settle_netted(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        ledger: Optional[NettingLedger] = None,
        closure_time: float = 0.0,
        epsilon: float = 0.01,
        tolerance: float = 1e-9,
    ) -> NettedSettlement:
        """Settle, then net the epoch's transfers into batch payments.

        Runs the same columnar reconciliation as :meth:`settle` (so
        records and flags are identical), records every individual
        per-flow transfer as an obligation on ``ledger`` (a fresh
        ledger when None) accepted at ``closure_time``, and closes the
        epoch: one net :class:`~repro.faithful.settlement.
        BatchTransfer` per debtor whose ``closure_time`` covers every
        obligation accepted before it.  Net money positions of the
        batch transfers are bit-identical to the per-flow transfer
        list's (see :func:`~repro.faithful.settlement.net_positions`).
        """
        sim_time = self.now if self._sim is not None else None
        with span(
            "bank.net", sim_time=sim_time, nodes=len(node_ids)
        ) as net_span:
            records, flags, stats = self._settle_impl(
                node_ids,
                declared_costs,
                epsilon,
                tolerance,
                collect_transfers=True,
            )
            if ledger is None:
                ledger = NettingLedger()
            assert stats.transfers is not None
            for payer, payee, amount in stats.transfers:
                if payer != payee:
                    ledger.record(payer, payee, amount, accepted_at=closure_time)
            transfers = ledger.close_epoch(closure_time)
            payouts = sum(len(transfer.payouts) for transfer in transfers)
            net_span.note(transfers=len(transfers), payouts=payouts)
            emit_counters(
                "bank",
                {
                    "nets": 1,
                    "flows_settled": stats.flows_settled,
                    "flow_groups": stats.flow_groups,
                    "transfer_records": stats.transfer_records,
                    "net_transfers": len(transfers),
                    "net_payouts": payouts,
                    "settlement_flags": len(flags),
                },
                sim_time=sim_time,
            )
        return NettedSettlement(
            records=records,
            flags=flags,
            transfers=transfers,
            ledger=ledger,
            flows_settled=stats.flows_settled,
            flow_groups=stats.flow_groups,
            transfer_records=stats.transfer_records,
            per_flow_transfers=stats.transfers,
        )

    def run_forced_settlement(
        self,
        ledger: NettingLedger,
        at_time: float,
        epsilon: float = 0.01,
        tolerance: float = 1e-9,
    ):
        """Draw audited shortfalls from the defaulting debtors' deposits.

        Delegates to :func:`~repro.faithful.settlement.
        forced_settlement` against this bank's deposit accounts and
        emits the ``bank.forced_settlements`` / ``bank.deposit_draws``
        telemetry counters.
        """
        sim_time = self.now if self._sim is not None else None
        with span(
            "bank.forced", sim_time=sim_time
        ) as forced_span:
            outcomes = forced_settlement(
                ledger,
                self.deposits,
                epsilon=epsilon,
                at_time=at_time,
                tolerance=tolerance,
            )
            draws = sum(1 for outcome in outcomes if outcome.drawn > 0)
            forced_span.note(forced=len(outcomes), draws=draws)
            if outcomes:
                emit_counters(
                    "bank",
                    {"forced_settlements": len(outcomes), "deposit_draws": draws},
                    sim_time=sim_time,
                )
        return outcomes

    # --- per-flow reference engine (the oracle) ------------------------

    def settle_per_flow(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        epsilon: float = 0.01,
        tolerance: float = 1e-9,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag]]:
        """Reference settlement: walk one observation row at a time.

        The pre-columnar implementation, kept as the oracle the
        equivalence property tests compare :meth:`settle` against.
        """
        reports = self._stage_reports("execution")
        tally = _SettlementTally(node_ids)
        flags: List[Flag] = []

        receipts: Dict[NodeId, Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]] = {}
        for node_id in node_ids:
            table: Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]] = {}
            for origin, destination, sender, volume in reports.get(node_id, {}).get(
                "receipts", ()
            ):
                table.setdefault((origin, destination), {})[sender] = volume
            receipts[node_id] = table

        # Checker-reported misroute flags feed straight into penalties.
        for node_id in node_ids:
            for encoded in reports.get(node_id, {}).get("flags", ()):
                flag = decode_flag(encoded)
                flags.append(flag)
                tally.penalties[flag.principal].append(epsilon)

        # Reconcile each observed origination (first-hop checker data).
        for checker_id in sorted(node_ids, key=repr):
            for origin, destination, volume, path, charges in reports.get(
                checker_id, {}
            ).get("observations", ()):
                path = tuple(path)
                charge_map = dict(charges)
                flow = (origin, destination)
                culprit = self._walk_flow(
                    flow, volume, path, receipts, node_ids, tally, flags, epsilon
                )
                # The origin owes the charges for segments that were
                # actually carried; a misrouting origin is charged the
                # full expected amount anyway (clawback) plus epsilon.
                carried_charges = 0.0
                for index, transit in enumerate(path[1:-1], start=1):
                    successor = path[index + 1]
                    carried = receipts.get(successor, {}).get(flow, {}).get(transit, 0.0)
                    if carried > 0:
                        amount = charge_map.get(transit, 0.0)
                        tally.received[transit].append(amount)
                        tally.expected[origin].append(amount)
                        carried_charges += amount
                if culprit == origin:
                    full = math.fsum(charge_map.values())
                    shortfall = max(0.0, full - carried_charges)
                    tally.charged[origin].append(carried_charges + shortfall)
                    tally.penalties[origin].append(epsilon)
                    self._reimburse_off_path(
                        flow, path, receipts, tally, declared_costs,
                        node_ids, funded_by=culprit,
                    )
                else:
                    tally.charged[origin].append(carried_charges)
                    if culprit is not None:
                        self._reimburse_off_path(
                            flow, path, receipts, tally, declared_costs,
                            node_ids, funded_by=culprit,
                        )

        return self._finalize_settlement(
            node_ids, reports, tally, flags, epsilon, tolerance
        )

    def _walk_flow(
        self,
        flow: Tuple[NodeId, NodeId],
        volume: float,
        path: Tuple[NodeId, ...],
        receipts: Mapping[NodeId, Mapping],
        node_ids: Sequence[NodeId],
        tally: _SettlementTally,
        flags: List[Flag],
        epsilon: float,
    ) -> Optional[NodeId]:
        """Trace a flow along its certified path; penalise the first
        node that failed to hand it to the expected successor.

        Returns the culprit (None when the flow completed cleanly).
        """
        previous = path[0]
        for node in path[1:]:
            received = receipts.get(node, {}).get(flow, {}).get(previous, 0.0)
            if received <= 0:
                misrouted = any(
                    receipts.get(other, {}).get(flow, {}).get(previous, 0.0) > 0
                    for other in node_ids
                    if other != node
                )
                kind = FlagKind.MISROUTE if misrouted else FlagKind.PACKET_DROP
                # The culprit's payment is already denied (it is not in
                # the carried set); the epsilon puts it strictly below
                # the faithful outcome.
                tally.penalties[previous].append(epsilon)
                flags.append(
                    Flag.make(
                        kind,
                        checker=None,
                        principal=previous,
                        phase="execution",
                        origin=flow[0],
                        destination=flow[1],
                        volume=volume,
                    )
                )
                return previous
            previous = node
        return None

    def _reimburse_off_path(
        self,
        flow: Tuple[NodeId, NodeId],
        certified_path: Tuple[NodeId, ...],
        receipts: Mapping[NodeId, Mapping],
        tally: _SettlementTally,
        declared_costs: Mapping[NodeId, float],
        node_ids: Sequence[NodeId],
        funded_by: NodeId,
    ) -> None:
        """Pay innocent off-LCP carriers their declared cost.

        When a flow was diverted off the certified path, nodes that
        carried it in good faith (they forwarded per their own correct
        tables) are reimbursed at declared cost so the deviation never
        externalises losses onto the obedient — and the *culprit* funds
        the reimbursement (its penalty covers the harm it caused, on
        top of the epsilon), keeping the settlement money-conserving.
        """
        on_path = set(certified_path)
        origin, destination = flow
        for node_id in node_ids:
            if node_id in on_path or node_id == destination:
                continue
            volume_in = math.fsum(
                receipts.get(node_id, {}).get(flow, {}).values()
            )
            if volume_in > 0:
                reimbursement = declared_costs.get(node_id, 0.0) * volume_in
                tally.received[node_id].append(reimbursement)
                tally.penalties[funded_by].append(reimbursement)

    # --- columnar engine ----------------------------------------------

    def _settle_impl(
        self,
        node_ids: Sequence[NodeId],
        declared_costs: Mapping[NodeId, float],
        epsilon: float,
        tolerance: float,
        collect_transfers: bool = False,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag], SettlementStats]:
        """Grouped single-pass reconciliation over interned flow ids.

        Node ids and ``(origin, destination)`` flow keys are interned
        to dense integers (the :mod:`repro.routing.kernel` trick);
        receipts live in flat per-flow tables keyed by interned ids,
        and observation rows are grouped by (flow id, certified path)
        so the path walk, the carried-segment mask, and the off-path
        reimbursement scan are computed once per group and replayed
        per row.  Contribution multisets — and therefore the
        materialised records and the flag multiset — are identical to
        :meth:`settle_per_flow`'s.
        """
        reports = self._stage_reports("execution")
        tally = _SettlementTally(node_ids)
        flags: List[Flag] = []
        transfers: Optional[List[Tuple[NodeId, NodeId, float]]] = (
            [] if collect_transfers else None
        )

        # -- intern node ids: repr-sorted settlement set first, then
        #    any foreign id (senders/hops outside the set) on demand --
        rank: Dict[NodeId, int] = {}
        names: List[NodeId] = []
        for node_id in sorted(node_ids, key=repr):
            if node_id not in rank:
                rank[node_id] = len(names)
                names.append(node_id)

        def intern(node_id: NodeId) -> int:
            nid = rank.get(node_id)
            if nid is None:
                nid = len(names)
                rank[node_id] = nid
                names.append(node_id)
            return nid

        # -- ingest receipts into flat per-flow tables:
        #    fid -> receiver nid -> sender nid -> volume --
        flow_rank: Dict[Tuple[NodeId, NodeId], int] = {}
        flow_receipts: List[Dict[int, Dict[int, float]]] = []

        def intern_flow(flow: Tuple[NodeId, NodeId]) -> int:
            fid = flow_rank.get(flow)
            if fid is None:
                fid = len(flow_receipts)
                flow_rank[flow] = fid
                flow_receipts.append({})
            return fid

        for node_id in node_ids:
            nid = intern(node_id)
            for origin, destination, sender, volume in reports.get(
                node_id, {}
            ).get("receipts", ()):
                fid = intern_flow((origin, destination))
                flow_receipts[fid].setdefault(nid, {})[intern(sender)] = volume

        # Checker-reported misroute flags feed straight into penalties.
        for node_id in node_ids:
            for encoded in reports.get(node_id, {}).get("flags", ()):
                flag = decode_flag(encoded)
                flags.append(flag)
                tally.penalties[flag.principal].append(epsilon)

        # -- ingest observations into parallel arrays, grouped by
        #    (flow id, interned certified path) in canonical order --
        obs_volume: List[float] = []
        obs_charges: List[Sequence[Tuple[NodeId, float]]] = []
        groups: Dict[
            Tuple[int, Tuple[int, ...]],
            Tuple[NodeId, NodeId, Tuple[NodeId, ...], List[int]],
        ] = {}
        for checker_id in sorted(node_ids, key=repr):
            for origin, destination, volume, path, charges in reports.get(
                checker_id, {}
            ).get("observations", ()):
                path = tuple(path)
                fid = intern_flow((origin, destination))
                pkey = tuple(intern(hop) for hop in path)
                row = len(obs_volume)
                obs_volume.append(volume)
                obs_charges.append(charges)
                entry = groups.get((fid, pkey))
                if entry is None:
                    groups[(fid, pkey)] = (origin, destination, path, [row])
                else:
                    entry[3].append(row)

        transfer_records = 0
        for (fid, pkey), (origin, destination, path, rows) in groups.items():
            receipts_f = flow_receipts[fid]

            # Walk the certified path once per group: first hop whose
            # receipts from its predecessor are missing is the break,
            # and its predecessor the culprit.
            culprit: Optional[NodeId] = None
            culprit_kind = FlagKind.PACKET_DROP
            previous = pkey[0]
            for hop in pkey[1:]:
                if receipts_f.get(hop, {}).get(previous, 0.0) <= 0:
                    misrouted = any(
                        receiver != hop and senders.get(previous, 0.0) > 0
                        for receiver, senders in receipts_f.items()
                    )
                    culprit = names[previous]
                    culprit_kind = (
                        FlagKind.MISROUTE if misrouted else FlagKind.PACKET_DROP
                    )
                    break
                previous = hop

            # Carried-segment mask, with the per-node contribution
            # lists resolved once per group.
            carried: List[Tuple[NodeId, List[float]]] = []
            for index in range(1, len(pkey) - 1):
                transit_nid = pkey[index]
                if receipts_f.get(pkey[index + 1], {}).get(transit_nid, 0.0) > 0:
                    carried.append(
                        (path[index], tally.received[names[transit_nid]])
                    )

            expected_list = tally.expected[origin]
            charged_list = tally.charged[origin]

            # Off-path reimbursements: only actual carriers of this
            # flow are scanned (the per-flow engine walks every node).
            reimbursements: List[Tuple[NodeId, List[float], float]] = []
            culprit_penalties: List[float] = []
            if culprit is not None:
                culprit_penalties = tally.penalties[culprit]
                on_path = set(pkey)
                destination_nid = intern(destination)
                for receiver, senders in receipts_f.items():
                    if receiver in on_path or receiver == destination_nid:
                        continue
                    volume_in = math.fsum(senders.values())
                    if volume_in > 0:
                        carrier = names[receiver]
                        reimbursements.append(
                            (
                                carrier,
                                tally.received[carrier],
                                declared_costs.get(carrier, 0.0) * volume_in,
                            )
                        )

            culprit_is_origin = culprit == origin
            for row in rows:
                charge_map = dict(obs_charges[row])
                if culprit is not None:
                    culprit_penalties.append(epsilon)
                    flags.append(
                        Flag.make(
                            culprit_kind,
                            checker=None,
                            principal=culprit,
                            phase="execution",
                            origin=origin,
                            destination=destination,
                            volume=obs_volume[row],
                        )
                    )
                carried_charges = 0.0
                for transit, received_list in carried:
                    amount = charge_map.get(transit, 0.0)
                    received_list.append(amount)
                    expected_list.append(amount)
                    carried_charges += amount
                    if transfers is not None:
                        transfers.append((origin, transit, amount))
                transfer_records += len(carried)
                if culprit_is_origin:
                    full = math.fsum(charge_map.values())
                    shortfall = max(0.0, full - carried_charges)
                    charged_list.append(carried_charges + shortfall)
                    tally.penalties[origin].append(epsilon)
                else:
                    charged_list.append(carried_charges)
                if culprit is not None:
                    for carrier, received_list, amount in reimbursements:
                        received_list.append(amount)
                        culprit_penalties.append(amount)
                        if transfers is not None:
                            transfers.append((culprit, carrier, amount))

        records, flags = self._finalize_settlement(
            node_ids, reports, tally, flags, epsilon, tolerance
        )
        stats = SettlementStats(
            flows_settled=len(obs_volume),
            flow_groups=len(groups),
            transfer_records=transfer_records,
            transfers=transfers,
        )
        return records, flags, stats

    # --- shared settlement tail ----------------------------------------

    def _finalize_settlement(
        self,
        node_ids: Sequence[NodeId],
        reports: Mapping[NodeId, Mapping[str, Any]],
        tally: _SettlementTally,
        flags: List[Flag],
        epsilon: float,
        tolerance: float,
    ) -> Tuple[Dict[NodeId, SettlementRecord], List[Flag]]:
        """Compare reported DATA4 totals, materialise, sort flags."""
        records = {n: SettlementRecord() for n in node_ids}
        for node_id in sorted(node_ids, key=repr):
            reported = dict(reports.get(node_id, {}).get("reported_payments", ()))
            reported_total = math.fsum(reported.values())
            expected_total = math.fsum(tally.expected[node_id])
            record = records[node_id]
            record.reported_total = reported_total
            record.expected_total = expected_total
            if reported_total < expected_total - tolerance:
                shortfall = expected_total - reported_total
                tally.penalties[node_id].append(shortfall + epsilon)
                flags.append(
                    Flag.make(
                        FlagKind.PAYMENT_UNDERREPORT,
                        checker=None,
                        principal=node_id,
                        phase="execution",
                        shortfall=shortfall,
                    )
                )
        for node_id in node_ids:
            record = records[node_id]
            record.received = math.fsum(tally.received[node_id])
            record.charged = math.fsum(tally.charged[node_id])
            record.penalties = math.fsum(tally.penalties[node_id])
        flags.sort(key=Flag.sort_key)
        return records, flags
