"""Checker-side mirrors of a principal's computation (Figure 2).

Reproduces: Section 4.2/4.3 of Shneidman & Parkes (PODC'04) — "the
checker nodes execute a redundant computation that mirrors what the
principal is computing, and must receive a complete set of the
messages received by the principal."  A :class:`PrincipalMirror` is one
checker's clone of one neighbouring principal: it replays the
principal's :class:`~repro.routing.kernel.ReplayKernel` on the copies
the principal forwards, predicts every broadcast the principal should
make (as the *delta* an obedient principal would encode), and
accumulates :class:`~repro.faithful.audit.Flag` observations when
reality and replay disagree.

Why replay is exact
-------------------
The principal's suggested specification processes inputs in arrival
order and, per [PRINC1]/[PRINC2], *first* forwards a copy of each input
to all checkers and *then* recomputes and broadcasts.  On a FIFO link,
each checker therefore sees the copy of input ``m`` before any
broadcast that ``m`` triggered, so applying copies in arrival order —
with the relaxation deferred to the same batch boundaries the
principal used — reconstructs the principal's state at every broadcast
instant.  The checker's own messages to the principal are also
copy-returned (the checker verifies them against a ground-truth
ledger), keeping the replay ordered identically to the principal's
receive order.

Shared vs. per-neighbour replay
-------------------------------
Because a principal's copies reach all of its checkers identically, a
mirror may be started with a :class:`~repro.routing.kernel.
SharedKernel` (``shared=``): the expensive replayed kernel is then one
instance per principal per simulated host, advanced by whichever
mirror reaches the op-log frontier first, while every other mirror
*verifies* its own ops against the log and reuses the recorded
predictions.  Per-mirror state shrinks to the own-sent ledger, the
expected-broadcast queues, the deferred-flush flag, and a log cursor.
The first op that diverges from the log — different copies to
different checkers, selectively dropped copies, a lazy checker — forks
the mirror onto a private kernel replaying its *own* verified prefix,
so the flags and digests each mirror produces are bit-identical to the
per-neighbour replay in every case (property-tested in
``tests/faithful/test_shared_mirror.py``).  A mirror started without
``shared`` runs the per-neighbour replay directly — the retained
reference path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..routing.fpss import (
    FPSSComputation,
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
)
from ..routing.graph import Cost
from ..routing.kernel import (
    OP_DIVERGED,
    OP_EXTENDED,
    ReplayKernel,
    SharedKernel,
)
from ..obs.events import BUS
from ..obs.trace import emit_counters, emit_marker
from ..sim.messages import NodeId
from .audit import Flag, FlagKind


class PrincipalMirror:
    """One checker's replayed clone of one principal.

    Parameters
    ----------
    checker_id:
        The node doing the checking (a neighbour of the principal).
    principal_id:
        The node being checked.
    """

    def __init__(self, checker_id: NodeId, principal_id: NodeId) -> None:
        self.checker_id = checker_id
        self.principal_id = principal_id
        #: Private replayed kernel (per-neighbour mode, or a fork off a
        #: shared kernel after divergence).
        self._private: Optional[ReplayKernel] = None
        #: Shared kernel this mirror follows, if any.
        self._shared: Optional[SharedKernel] = None
        #: This mirror's position in the shared op log.
        self._cursor = 0
        self.flags: List[Flag] = []
        #: Broadcast vectors the replay says the principal must emit
        #: next, in order (separate queues per message kind).
        self._expected_route: Deque[Tuple] = deque()
        self._expected_price: Deque[Tuple] = deque()
        #: Ground-truth ledger of updates this checker sent to the
        #: principal, awaiting copy-return.
        self._awaiting_copy: Deque[Tuple[str, Tuple]] = deque()
        #: Copies ingested but not yet replayed (batched delivery).
        self._replay_pending = False
        #: Relaxations this mirror executed itself (not satisfied from
        #: a shared log); telemetry reports the delta per checkpoint.
        self.replays_run = 0
        self._replays_emitted = 0
        self._flags_emitted = 0

    @property
    def comp(self) -> Optional[ReplayKernel]:
        """The effective replayed computation, or None before phase 2.

        Non-materialising: while following a shared kernel the returned
        object may be *ahead* of this mirror's cursor (another checker
        advanced it).  Use it for identity/None checks and static
        attributes (``neighbors``); read table state through
        :meth:`computation`, which settles the mirror to its own
        position first.
        """
        if self._private is not None:
            return self._private
        if self._shared is not None:
            return self._shared.kernel
        return None

    def computation(self) -> ReplayKernel:
        """The replayed kernel *at this mirror's own position*.

        At the frontier (the common case — every quiescence point) this
        is the shared kernel itself; behind the frontier (e.g. a lazy
        checker that stopped replaying) the mirror forks onto a private
        kernel replaying its own verified prefix, so the state it
        exposes is exactly what its per-neighbour replay would hold.
        """
        if self._private is not None:
            return self._private
        shared = self._shared
        assert shared is not None, "mirror has not started phase 2"
        if self._cursor == shared.frontier:
            return shared.kernel
        self._fork()
        assert self._private is not None
        return self._private

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start_phase2(
        self,
        principal_neighbors: Sequence[NodeId],
        declared_cost: Cost,
        known_costs: Dict[NodeId, Cost],
        shared: Optional[SharedKernel] = None,
    ) -> None:
        """Initialise the replay for the second construction phase.

        ``known_costs`` is the converged DATA1 from phase 1 (common to
        all nodes once the phase-1 checkpoint green-lights), which the
        principal's computation reads during relaxation.  With
        ``shared`` the mirror follows that kernel's op log instead of
        replaying privately; the caller (see
        :meth:`~repro.routing.kernel.MirrorKernelPool.acquire`) is
        responsible for only passing a kernel whose seed matches these
        arguments — the sharing invariant.
        """
        self.flags = []
        self._expected_route.clear()
        self._expected_price.clear()
        self._awaiting_copy.clear()
        self._replay_pending = False
        self._cursor = 0
        self.replays_run = 0
        self._replays_emitted = 0
        self._flags_emitted = 0
        if shared is not None:
            self._shared = shared
            self._private = None
            # The shared kernel already replicated the principal's
            # start_phase2 (reset, full relaxations, unconditional
            # initial announcements); queue the recorded predictions.
            self._expected_route.append(shared.initial_route)
            self._expected_price.append(shared.initial_price)
            return
        self._shared = None
        comp = FPSSComputation(
            self.principal_id, principal_neighbors, declared_cost
        )
        for node, cost in known_costs.items():
            comp.note_cost_declaration(node, cost)
        # Replicate the principal's start_phase2: reset tables, run the
        # full relaxations once, and announce both vectors
        # unconditionally (a delta against the empty baseline).
        comp.reset_phase2()
        comp.recompute_routes()
        comp.recompute_avoidance()
        comp.derive_pricing()
        self._private = comp
        self._expected_route.append(comp.consume_route_delta())
        self._expected_price.append(comp.consume_avoid_delta())

    def _flag(self, kind: FlagKind, **detail) -> None:
        self.flags.append(
            Flag.make(
                kind,
                checker=self.checker_id,
                principal=self.principal_id,
                phase="construction-2",
                **detail,
            )
        )

    def _fork(self) -> None:
        """Leave the shared log for a private kernel at this cursor."""
        shared = self._shared
        assert shared is not None
        self._private = shared.fork_at(self._cursor)
        self._shared = None
        if BUS.enabled:
            # Forks are rare (a deviant principal treating checkers
            # unequally, or a lazy checker behind the frontier) and
            # worth a lifecycle marker each.
            emit_marker(
                "mirror.fork",
                checker=str(self.checker_id),
                principal=str(self.principal_id),
                cursor=self._cursor,
            )

    # ------------------------------------------------------------------
    # ledger of the checker's own messages to the principal
    # ------------------------------------------------------------------

    def record_sent(self, kind: str, encoded_vector: Tuple) -> None:
        """The checker sent this update to the principal; expect a copy."""
        self._awaiting_copy.append((kind, tuple(encoded_vector)))

    def _match_returned_copy(self, kind: str, encoded_vector: Tuple) -> None:
        """Verify a copy-return of the checker's own message."""
        if not self._awaiting_copy:
            self._flag(FlagKind.COPY_FORGERY, reason="copy of unsent message")
            return
        expected_kind, expected_vector = self._awaiting_copy.popleft()
        if expected_kind != kind or expected_vector != tuple(encoded_vector):
            self._flag(
                FlagKind.COPY_FORGERY,
                reason="copy does not match the message actually sent",
            )

    # ------------------------------------------------------------------
    # inputs: forwarded copies
    # ------------------------------------------------------------------

    def apply_copy(
        self,
        orig_kind: str,
        orig_src: NodeId,
        encoded_vector: Tuple,
        defer: bool = False,
    ) -> bool:
        """Replay one input the principal claims to have received.

        Implements [CHECK1]/[CHECK2]: copies from non-checkers of the
        principal are ignored (and flagged as spoofs); the checker's
        own copy-returns are validated against the ledger; everything
        else is applied to the replayed computation exactly as the
        principal's handler would.

        ``defer=True`` (batched delivery) only ingests the copy; the
        relaxation runs once per batch via :meth:`flush_pending`,
        mirroring the principal's own batch boundary — copies of one
        principal batch share an arrival instant on the FIFO link, so
        the checker's batch boundary coincides with the principal's.

        Returns True when this call executed kernel work itself
        (ingestion at the shared frontier, or any private replay) and
        False when it was satisfied from the shared op log — the
        metrics-relevant distinction.
        """
        comp = self.comp
        if comp is None:
            return False
        if orig_src not in comp.neighbors:
            self._flag(FlagKind.SPOOFED_COPY, claimed_author=orig_src)
            return False
        if orig_src == self.checker_id:
            self._match_returned_copy(orig_kind, encoded_vector)
        if orig_kind not in (KIND_RT_UPDATE, KIND_PRICE_UPDATE):
            self._flag(FlagKind.SPOOFED_COPY, claimed_message_kind=orig_kind)
            return False

        # ``tuple`` of a tuple is the identical object, so honest
        # multicast payloads keep their identity and the shared-log
        # verification below stays an ``is`` check on the hot path.
        rows = tuple(encoded_vector)
        ran = self._ingest(orig_kind, orig_src, rows)
        if defer:
            self._replay_pending = True
            return ran
        return self._replay() or ran

    def _ingest(self, orig_kind: str, orig_src: NodeId, rows: Tuple) -> bool:
        """Apply one copy to the private kernel or the shared log."""
        private = self._private
        if private is None and self._shared is not None:
            outcome = self._shared.ingest(self._cursor, orig_kind, orig_src, rows)
            if outcome is not OP_DIVERGED:
                self._cursor += 1
                return outcome is OP_EXTENDED
            # This checker's stream differs from the logged one (a
            # deviant principal treats its checkers unequally): fork
            # onto the verified prefix and continue privately.
            self._fork()
            private = self._private
        assert private is not None
        if orig_kind == KIND_RT_UPDATE:
            private.apply_route_delta(orig_src, rows)
        else:
            private.apply_avoid_delta(orig_src, rows)
        return True

    def _replay(self) -> bool:
        """Relax the mirrored tables once; queue expected broadcasts.

        Returns True when the relaxation actually ran here (False when
        the shared log already held this flush and its predictions).
        """
        private = self._private
        if private is None and self._shared is not None:
            result = self._shared.flush(self._cursor)
            if result is not None:
                self._cursor, route_delta, price_delta, ran = result
                if route_delta is not None:
                    self._expected_route.append(route_delta)
                if price_delta is not None:
                    self._expected_price.append(price_delta)
                if ran:
                    self.replays_run += 1
                return ran
            # The log holds an *apply* where this mirror flushes: its
            # batch boundaries diverged from the leader's stream.
            self._fork()
            private = self._private
        assert private is not None
        route_delta, price_delta = private.settle()
        if route_delta is not None:
            self._expected_route.append(route_delta)
        if price_delta is not None:
            self._expected_price.append(price_delta)
        self.replays_run += 1
        return True

    def flush_pending(self) -> bool:
        """Run a deferred replay, if any; True if one actually ran here.

        Called by the checker before observing a broadcast from the
        principal and at every batch boundary, so the expected-
        broadcast queues are always current when compared.  Returns
        False both when nothing was pending and when the pending flush
        was satisfied from the shared log (no kernel work executed by
        this mirror) — callers use the result for work accounting.
        """
        if not self._replay_pending:
            return False
        self._replay_pending = False
        return self._replay()

    # ------------------------------------------------------------------
    # observations: the principal's actual broadcasts
    # ------------------------------------------------------------------

    def observe_route_broadcast(self, encoded_vector: Tuple) -> None:
        """Compare an actual routing broadcast against the replay."""
        if not self._expected_route:
            self._flag(FlagKind.UNEXPECTED_BROADCAST, message_kind=KIND_RT_UPDATE)
            return
        expected = self._expected_route.popleft()
        if expected != tuple(encoded_vector):
            self._flag(FlagKind.BROADCAST_MISMATCH, message_kind=KIND_RT_UPDATE)

    def observe_price_broadcast(self, encoded_vector: Tuple) -> None:
        """Compare an actual pricing broadcast against the replay."""
        if not self._expected_price:
            self._flag(FlagKind.UNEXPECTED_BROADCAST, message_kind=KIND_PRICE_UPDATE)
            return
        expected = self._expected_price.popleft()
        if expected != tuple(encoded_vector):
            self._flag(FlagKind.BROADCAST_MISMATCH, message_kind=KIND_PRICE_UPDATE)

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------

    def checkpoint_flags(self) -> List[Flag]:
        """Quiescence-time consistency checks (suppression, drops).

        At a network quiescence point every in-flight message has been
        delivered, so any still-pending expected broadcast means the
        principal suppressed an update, and any unreturned ledger entry
        means it dropped a checker copy.
        """
        if self._expected_route:
            self._flag(
                FlagKind.SUPPRESSED_UPDATE,
                message_kind=KIND_RT_UPDATE,
                pending=len(self._expected_route),
            )
            self._expected_route.clear()
        if self._expected_price:
            self._flag(
                FlagKind.SUPPRESSED_UPDATE,
                message_kind=KIND_PRICE_UPDATE,
                pending=len(self._expected_price),
            )
            self._expected_price.clear()
        if self._awaiting_copy:
            self._flag(
                FlagKind.COPY_MISSING, pending=len(self._awaiting_copy)
            )
            self._awaiting_copy.clear()
        if BUS.enabled:
            self._emit_checkpoint_counters()
        return list(self.flags)

    def _emit_checkpoint_counters(self) -> None:
        """Emit one ``mirror`` counter-delta record for this checkpoint.

        Per-replay emission would swamp the feed (one record per batch
        per mirror); instead replays and flags accrue on the mirror and
        the deltas since the previous checkpoint ride on a single
        record, so summing records still yields exact totals.
        """
        delta = {
            "checkpoints": 1,
            "replays": self.replays_run - self._replays_emitted,
            "flags": len(self.flags) - self._flags_emitted,
        }
        self._replays_emitted = self.replays_run
        self._flags_emitted = len(self.flags)
        emit_counters(
            "mirror", {key: value for key, value in delta.items() if value}
        )

    # ------------------------------------------------------------------
    # bank material
    # ------------------------------------------------------------------

    def private_kernel_stats(self):
        """Counters of this mirror's private kernel, if it has one.

        Non-``None`` exactly when the mirror replays per neighbour —
        started without sharing (seed mismatch, reference mode) or
        forked off a shared log.  Shared mirrors return ``None``: their
        work is accounted on the pooled :class:`~repro.routing.kernel.
        SharedKernel`, and per-mirror collection would multiply it.
        """
        return self._private.stats if self._private is not None else None

    def routing_digest(self) -> str:
        """Hash of the mirrored DATA2 (BANK1 material)."""
        return self.computation().routing_digest()

    def pricing_digest(self) -> str:
        """Hash of the mirrored DATA3* (BANK2 material)."""
        return self.computation().pricing_digest()
