"""Checker-side mirrors of a principal's computation (Figure 2).

"The checker nodes execute a redundant computation that mirrors what
the principal is computing, and must receive a complete set of the
messages received by the principal."  A :class:`PrincipalMirror` is one
checker's clone of one neighbouring principal: it replays the exact
:class:`~repro.routing.fpss.FPSSComputation` on the copies the
principal forwards, predicts every broadcast the principal should make,
and accumulates :class:`~repro.faithful.audit.Flag` observations when
reality and replay disagree.

Why replay is exact
-------------------
The principal's suggested specification processes inputs in arrival
order and, per [PRINC1]/[PRINC2], *first* forwards a copy of each input
to all checkers and *then* recomputes and broadcasts.  On a FIFO link,
each checker therefore sees the copy of input ``m`` before any
broadcast that ``m`` triggered, so applying copies in arrival order
reconstructs the principal's state at every broadcast instant.  The
checker's own messages to the principal are also copy-returned (the
checker verifies them against a ground-truth ledger), keeping the
replay ordered identically to the principal's receive order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..routing.fpss import (
    FPSSComputation,
    KIND_PRICE_UPDATE,
    KIND_RT_UPDATE,
)
from ..routing.graph import Cost
from ..sim.messages import NodeId
from .audit import Flag, FlagKind


class PrincipalMirror:
    """One checker's replayed clone of one principal.

    Parameters
    ----------
    checker_id:
        The node doing the checking (a neighbour of the principal).
    principal_id:
        The node being checked.
    """

    def __init__(self, checker_id: NodeId, principal_id: NodeId) -> None:
        self.checker_id = checker_id
        self.principal_id = principal_id
        self.comp: Optional[FPSSComputation] = None
        self.flags: List[Flag] = []
        #: Broadcast vectors the replay says the principal must emit
        #: next, in order (separate queues per message kind).
        self._expected_route: Deque[Tuple] = deque()
        self._expected_price: Deque[Tuple] = deque()
        #: Ground-truth ledger of updates this checker sent to the
        #: principal, awaiting copy-return.
        self._awaiting_copy: Deque[Tuple[str, Tuple]] = deque()
        #: Copies ingested but not yet replayed (batched delivery).
        self._replay_pending = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start_phase2(
        self,
        principal_neighbors: Sequence[NodeId],
        declared_cost: Cost,
        known_costs: Dict[NodeId, Cost],
    ) -> None:
        """Initialise the replay for the second construction phase.

        ``known_costs`` is the converged DATA1 from phase 1 (common to
        all nodes once the phase-1 checkpoint green-lights), which the
        principal's computation reads during relaxation.
        """
        self.comp = FPSSComputation(
            self.principal_id, principal_neighbors, declared_cost
        )
        for node, cost in known_costs.items():
            self.comp.note_cost_declaration(node, cost)
        self.flags = []
        self._expected_route.clear()
        self._expected_price.clear()
        self._awaiting_copy.clear()
        self._replay_pending = False
        # Replicate the principal's start_phase2: reset tables, run the
        # full relaxations once, and announce both vectors
        # unconditionally (a delta against the empty baseline).
        self.comp.reset_phase2()
        self.comp.recompute_routes()
        self.comp.recompute_avoidance()
        self.comp.derive_pricing()
        self._expected_route.append(self._next_expected_route())
        self._expected_price.append(self._next_expected_price())

    def _flag(self, kind: FlagKind, **detail) -> None:
        self.flags.append(
            Flag.make(
                kind,
                checker=self.checker_id,
                principal=self.principal_id,
                phase="construction-2",
                **detail,
            )
        )

    def _next_expected_route(self) -> Tuple:
        """Predicted routing delta (the principal's suggested one).

        Mirrors always replay the *suggested* specification, so the
        prediction is the same ``consume_route_delta`` encoding an
        obedient principal broadcasts from — one shared implementation,
        which is what keeps the streams bit-identical.
        """
        assert self.comp is not None
        return self.comp.consume_route_delta()

    def _next_expected_price(self) -> Tuple:
        """Predicted avoidance delta of the suggested specification."""
        assert self.comp is not None
        return self.comp.consume_avoid_delta()

    # ------------------------------------------------------------------
    # ledger of the checker's own messages to the principal
    # ------------------------------------------------------------------

    def record_sent(self, kind: str, encoded_vector: Tuple) -> None:
        """The checker sent this update to the principal; expect a copy."""
        self._awaiting_copy.append((kind, tuple(encoded_vector)))

    def _match_returned_copy(self, kind: str, encoded_vector: Tuple) -> None:
        """Verify a copy-return of the checker's own message."""
        if not self._awaiting_copy:
            self._flag(FlagKind.COPY_FORGERY, reason="copy of unsent message")
            return
        expected_kind, expected_vector = self._awaiting_copy.popleft()
        if expected_kind != kind or expected_vector != tuple(encoded_vector):
            self._flag(
                FlagKind.COPY_FORGERY,
                reason="copy does not match the message actually sent",
            )

    # ------------------------------------------------------------------
    # inputs: forwarded copies
    # ------------------------------------------------------------------

    def apply_copy(
        self,
        orig_kind: str,
        orig_src: NodeId,
        encoded_vector: Tuple,
        defer: bool = False,
    ) -> None:
        """Replay one input the principal claims to have received.

        Implements [CHECK1]/[CHECK2]: copies from non-checkers of the
        principal are ignored (and flagged as spoofs); the checker's
        own copy-returns are validated against the ledger; everything
        else is applied to the replayed computation exactly as the
        principal's handler would.

        ``defer=True`` (batched delivery) only ingests the copy; the
        relaxation runs once per batch via :meth:`flush_pending`,
        mirroring the principal's own batch boundary — copies of one
        principal batch share an arrival instant on the FIFO link, so
        the checker's batch boundary coincides with the principal's.
        """
        if self.comp is None:
            return
        if orig_src not in self.comp.neighbors:
            self._flag(FlagKind.SPOOFED_COPY, claimed_author=orig_src)
            return
        if orig_src == self.checker_id:
            self._match_returned_copy(orig_kind, encoded_vector)

        if orig_kind == KIND_RT_UPDATE:
            self.comp.apply_route_delta(orig_src, tuple(encoded_vector))
        elif orig_kind == KIND_PRICE_UPDATE:
            self.comp.apply_avoid_delta(orig_src, tuple(encoded_vector))
        else:
            self._flag(FlagKind.SPOOFED_COPY, claimed_message_kind=orig_kind)
            return
        if defer:
            self._replay_pending = True
        else:
            self._replay()

    def _replay(self) -> None:
        """Relax the mirrored tables once; queue expected broadcasts."""
        assert self.comp is not None
        if self.comp.recompute_routes_incremental():
            self._expected_route.append(self._next_expected_route())
        if self.comp.recompute_avoidance_incremental():
            self._expected_price.append(self._next_expected_price())
        self.comp.derive_pricing_incremental()

    def flush_pending(self) -> bool:
        """Run a deferred replay, if any; True if one ran.

        Called by the checker before observing a broadcast from the
        principal and at every batch boundary, so the expected-
        broadcast queues are always current when compared.
        """
        if not self._replay_pending:
            return False
        self._replay_pending = False
        self._replay()
        return True

    # ------------------------------------------------------------------
    # observations: the principal's actual broadcasts
    # ------------------------------------------------------------------

    def observe_route_broadcast(self, encoded_vector: Tuple) -> None:
        """Compare an actual routing broadcast against the replay."""
        if not self._expected_route:
            self._flag(FlagKind.UNEXPECTED_BROADCAST, message_kind=KIND_RT_UPDATE)
            return
        expected = self._expected_route.popleft()
        if expected != tuple(encoded_vector):
            self._flag(FlagKind.BROADCAST_MISMATCH, message_kind=KIND_RT_UPDATE)

    def observe_price_broadcast(self, encoded_vector: Tuple) -> None:
        """Compare an actual pricing broadcast against the replay."""
        if not self._expected_price:
            self._flag(FlagKind.UNEXPECTED_BROADCAST, message_kind=KIND_PRICE_UPDATE)
            return
        expected = self._expected_price.popleft()
        if expected != tuple(encoded_vector):
            self._flag(FlagKind.BROADCAST_MISMATCH, message_kind=KIND_PRICE_UPDATE)

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------

    def checkpoint_flags(self) -> List[Flag]:
        """Quiescence-time consistency checks (suppression, drops).

        At a network quiescence point every in-flight message has been
        delivered, so any still-pending expected broadcast means the
        principal suppressed an update, and any unreturned ledger entry
        means it dropped a checker copy.
        """
        if self._expected_route:
            self._flag(
                FlagKind.SUPPRESSED_UPDATE,
                message_kind=KIND_RT_UPDATE,
                pending=len(self._expected_route),
            )
            self._expected_route.clear()
        if self._expected_price:
            self._flag(
                FlagKind.SUPPRESSED_UPDATE,
                message_kind=KIND_PRICE_UPDATE,
                pending=len(self._expected_price),
            )
            self._expected_price.clear()
        if self._awaiting_copy:
            self._flag(
                FlagKind.COPY_MISSING, pending=len(self._awaiting_copy)
            )
            self._awaiting_copy.clear()
        return list(self.flags)

    # ------------------------------------------------------------------
    # bank material
    # ------------------------------------------------------------------

    def routing_digest(self) -> str:
        """Hash of the mirrored DATA2 (BANK1 material)."""
        assert self.comp is not None
        return self.comp.routing_digest()

    def pricing_digest(self) -> str:
        """Hash of the mirrored DATA3* (BANK2 material)."""
        assert self.comp is not None
        return self.comp.pricing_digest()
