"""The rational-manipulation catalogue for the routing case study.

Section 4.3 enumerates the manipulations that remain possible after
FPSS's own problem partitioning:

1. drop, change, or spoof forwarded routing-table update messages
   ([PRINC1] message passing);
2. miscompute LCPs / drop, change, spoof new LCP updates ([PRINC1]
   computation);
3. drop, change, or spoof forwarded pricing-table update messages
   ([PRINC2] message passing);
4. miscompute pricing tables / manipulate pricing updates ([PRINC2]
   computation);

plus the information-revelation lie of Example 1 (misdeclaring one's
transit cost) and the execution-phase frauds (payment under-reporting,
packet dropping, off-LCP routing) that the bank's settlement exists to
stop.

Each manipulation is a *mixin* overriding exactly one deviation seam of
:class:`~repro.routing.fpss.FPSSNode` or
:class:`~repro.faithful.node.FaithfulRoutingNode`, so the same
deviation can be installed in the plain protocol (where it profits) and
in the faithful protocol (where it is caught).  The
:class:`DeviationSpec` registry records, for every manipulation, which
external-action classes it touches — the input the IC/CC/AC and
strong-CC/strong-AC verifiers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Tuple, Type

from ..errors import MechanismError
from ..routing.fpss import FPSSNode
from ..routing.graph import Cost
from ..sim.crypto import SigningAuthority
from ..sim.messages import NodeId
from ..specs.actions import ActionClass
from .node import FaithfulRoutingNode


class DeviationMixin:
    """Base for manipulation mixins; parameters land in ``dev_params``."""

    dev_params: Dict[str, Any] = {}

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one deviation parameter."""
        return self.dev_params.get(key, default)


# ----------------------------------------------------------------------
# information revelation
# ----------------------------------------------------------------------


class CostLieMixin(DeviationMixin):
    """Example 1: declare a transit cost other than the true one.

    A *consistent* misreport of private type information — precisely
    the deviation VCG strategyproofness neutralises.  Parameters:
    ``declared`` (absolute) or ``factor`` (multiplier on truth).
    """

    def declared_cost(self) -> Cost:
        """Announce the configured lie instead of the true cost."""
        declared = self.param("declared")
        if declared is not None:
            return float(declared)
        return self.true_cost * float(self.param("factor", 1.0))


# ----------------------------------------------------------------------
# construction-phase computation (manipulations 2 and 4)
# ----------------------------------------------------------------------


class FalseRouteAnnouncerMixin(DeviationMixin):
    """Announce routing vectors with shaded (understated) path costs.

    Claiming that destinations are cheaper to reach through you raises
    the VCG payment ``p_k = c_k + d^{-k} - d`` that sources compute for
    you (their ``d`` falls while ``d^{-k}`` is untouched — FPSS's
    partitioning keeps your announcements out of your own avoidance
    entries, but not out of the plain routing entries).  Profitable in
    plain FPSS; in the faithful extension every checker's replay
    predicts the honest vector, so the first shaded broadcast raises a
    BROADCAST_MISMATCH flag and BANK1 restarts the phase.
    """

    def make_route_broadcast(self):
        """Scale every announced path cost by the shade factor."""
        honest = super().make_route_broadcast()
        shade = float(self.param("shade", 0.5))
        return {
            dest: type(entry)(cost=entry.cost * shade, path=entry.path)
            for dest, entry in honest.items()
        }


class RouteSuppressMixin(DeviationMixin):
    """Compute correctly but never announce LCP updates.

    The "drop new LCP updates" half of manipulation 2.  Checkers
    predict each announcement, so the pending expectation surfaces as a
    SUPPRESSED_UPDATE flag at the BANK1 quiescence checkpoint.
    """

    def announce_routes(self) -> None:
        """Suppress the announcement entirely."""
        return None


class FalsePriceAnnouncerMixin(DeviationMixin):
    """Announce avoidance/pricing vectors with inflated costs.

    Manipulation 4's "change pricing update" arm: inflating the
    avoidance costs you relay raises the ``d^{-k}`` other nodes compute
    and hence the payments they make — to *other* transit nodes on
    your announcements, or (two hops out) back to you via relaxation
    chains.  Caught exactly like the route announcer.
    """

    def make_price_broadcast(self):
        """Scale every announced avoidance cost by the inflate factor."""
        honest = super().make_price_broadcast()
        inflate = float(self.param("inflate", 2.0))
        return {
            key: type(entry)(cost=entry.cost * inflate, path=entry.path)
            for key, entry in honest.items()
        }


# ----------------------------------------------------------------------
# construction-phase message passing (manipulations 1 and 3)
# ----------------------------------------------------------------------


class CopyDropMixin(DeviationMixin):
    """Drop the checker copies of received updates ([PRINC1]/[PRINC2]).

    The sending checker's ledger entry is never copy-returned
    (COPY_MISSING), and the other checkers' mirrors diverge from the
    sender's — caught at BANK1/BANK2 either way.
    """

    def forward_copy_to_checkers(self, orig_kind, orig_src, vector) -> None:
        """Drop the checker copies of the configured kinds."""
        kinds = self.param("kinds")
        if kinds is None or orig_kind in kinds:
            return None
        super().forward_copy_to_checkers(orig_kind, orig_src, vector)


class CopyAlterMixin(DeviationMixin):
    """Forward altered checker copies (change arm of manipulations 1/3).

    The original sender validates its copy-return against ground truth
    (COPY_FORGERY), and mirrors fed the altered copy disagree with the
    sender's mirror at the digest comparison.
    """

    def forward_copy_to_checkers(self, orig_kind, orig_src, vector) -> None:
        """Forward copies with every row's cost scaled."""
        scale = float(self.param("scale", 2.0))
        altered = tuple(
            row[:-2] + (row[-2] * scale, row[-1]) for row in vector
        )
        super().forward_copy_to_checkers(orig_kind, orig_src, altered)


class CopySpoofMixin(DeviationMixin):
    """Fabricate checker copies that were never received (spoof arm).

    The claimed author is one of the principal's checkers, so the
    CHECK2 tag rule does not discard it — but that very checker knows
    it never sent the message (COPY_FORGERY against its ledger), and
    the mirrors of the remaining checkers absorb the spoof and diverge
    from the author's mirror, failing the digest comparison.
    """

    def forward_copy_to_checkers(self, orig_kind, orig_src, vector) -> None:
        """Forward honestly, then fabricate one copy in a victim's name."""
        super().forward_copy_to_checkers(orig_kind, orig_src, vector)
        if getattr(self, "_spoofed_once", False):
            return
        self._spoofed_once = True
        victim = self.param("claimed_author")
        if victim is None:
            others = [n for n in self.neighbors if n != orig_src]
            victim = others[0] if others else orig_src
        scale = float(self.param("scale", 0.25))
        forged = tuple(row[:-2] + (row[-2] * scale, row[-1]) for row in vector)
        super().forward_copy_to_checkers(orig_kind, victim, forged)


# ----------------------------------------------------------------------
# checkpoint reporting
# ----------------------------------------------------------------------


class RoutingDigestLieMixin(DeviationMixin):
    """Report a fabricated DATA2 digest at BANK1."""

    def report_routing_digest(self) -> str:
        """Report a fabricated digest."""
        return "0" * 64


class PricingDigestLieMixin(DeviationMixin):
    """Report a fabricated DATA3* digest at BANK2."""

    def report_pricing_digest(self) -> str:
        """Report a fabricated digest."""
        return "f" * 64


class LazyCheckerMixin(DeviationMixin):
    """Skip the checker's redundant computation ([CHECK1]/[CHECK2]).

    The stale mirror digest disagrees with the principal's group at
    BANK1, restarting the phase — so shirking checker duty is itself a
    computational deviation with negative payoff, which is how the
    specification keeps *checkers* faithful (partitioning argument).
    """

    def on_checker_copy(self, message) -> None:
        """Ignore the copy (skip the redundant computation)."""
        return None


# ----------------------------------------------------------------------
# execution phase
# ----------------------------------------------------------------------


class ChargeUnderstateMixin(DeviationMixin):
    """Accumulate DATA4 from understated prices (footnote 7 scenario).

    The node's *certified* pricing digest was honest, but it charges
    itself less than the certified table when originating traffic.
    Caught at settlement: the first-hop checker recomputes the expected
    charges from its mirrored pricing table.
    """

    def compute_charges(self, destination, volume):
        """Charge DATA4 a scaled-down fraction of the honest prices."""
        honest = super().compute_charges(destination, volume)
        factor = float(self.param("factor", 0.25))
        return {payee: amount * factor for payee, amount in honest.items()}


class PaymentUnderreportMixin(DeviationMixin):
    """Report a scaled-down DATA4 to the bank."""

    def report_payments(self):
        """Report a scaled-down DATA4 to the bank."""
        factor = float(self.param("factor", 0.5))
        return {
            payee: amount * factor
            for payee, amount in super().report_payments().items()
        }


class PacketDropMixin(DeviationMixin):
    """Silently drop transiting packets, pocketing the saved effort."""

    def should_forward(self, origin, destination, volume) -> bool:
        """Never forward transiting packets."""
        return False


class MisrouteMixin(DeviationMixin):
    """Forward own traffic off the certified lowest-cost path."""

    def choose_first_hop(self, destination):
        """Send own traffic to any neighbour off the certified LCP."""
        honest = super().choose_first_hop(destination)
        for neighbor in self.neighbors:
            if neighbor != honest:
                return neighbor
        return honest


class TransitMisrouteMixin(DeviationMixin):
    """Divert *transiting* traffic off the certified path.

    Unlike :class:`MisrouteMixin` (which diverts the node's own
    originated flows), this deviation breaks other nodes' flows
    mid-path.  The wrong next hop is itself a checker of the deviator,
    so the packet is flagged on arrival, and the certified-path walk at
    settlement denies the deviator its transit payment.
    """

    def choose_next_hop(self, origin, destination):
        """Divert transiting traffic off the certified path."""
        honest = super().choose_next_hop(origin, destination)
        for neighbor in self.neighbors:
            if neighbor != honest and neighbor != origin:
                return neighbor
        return honest


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

IR = ActionClass.INFORMATION_REVELATION
MP = ActionClass.MESSAGE_PASSING
COMP = ActionClass.COMPUTATION


@dataclass(frozen=True)
class DeviationSpec:
    """One catalogued manipulation: mixin + classification + defaults."""

    name: str
    mixin: Type[DeviationMixin]
    classes: FrozenSet[ActionClass]
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Whether the deviation is expressible in the plain protocol
    #: (checker-copy manipulations need the faithful machinery).
    plain_capable: bool = True
    #: Whether the deviation acts during construction (and is thus
    #: caught by checkpoints) or during execution (settlement).
    stage: str = "construction"

    def with_params(self, **params: Any) -> "DeviationSpec":
        """A copy with overridden parameters."""
        merged = dict(self.params)
        merged.update(params)
        return DeviationSpec(
            name=self.name,
            mixin=self.mixin,
            classes=self.classes,
            params=merged,
            plain_capable=self.plain_capable,
            stage=self.stage,
        )


#: All catalogued manipulations, keyed by name.
DEVIATION_CATALOGUE: Dict[str, DeviationSpec] = {
    spec.name: spec
    for spec in (
        DeviationSpec("cost-lie", CostLieMixin, frozenset({IR}),
                      {"factor": 5.0}),
        DeviationSpec("false-route-announce", FalseRouteAnnouncerMixin,
                      frozenset({COMP}), {"shade": 0.5}),
        DeviationSpec("route-suppress", RouteSuppressMixin,
                      frozenset({COMP}), {}),
        DeviationSpec("false-price-announce", FalsePriceAnnouncerMixin,
                      frozenset({COMP}), {"inflate": 2.0}),
        DeviationSpec("copy-drop", CopyDropMixin, frozenset({MP}),
                      {}, plain_capable=False),
        DeviationSpec("copy-alter", CopyAlterMixin, frozenset({MP}),
                      {"scale": 2.0}, plain_capable=False),
        DeviationSpec("copy-spoof", CopySpoofMixin, frozenset({MP}),
                      {"scale": 0.25}, plain_capable=False),
        DeviationSpec("routing-digest-lie", RoutingDigestLieMixin,
                      frozenset({COMP}), {}, plain_capable=False),
        DeviationSpec("pricing-digest-lie", PricingDigestLieMixin,
                      frozenset({COMP}), {}, plain_capable=False),
        DeviationSpec("lazy-checker", LazyCheckerMixin,
                      frozenset({COMP}), {}, plain_capable=False),
        DeviationSpec("charge-understate", ChargeUnderstateMixin,
                      frozenset({COMP}), {"factor": 0.25},
                      stage="execution"),
        DeviationSpec("payment-underreport", PaymentUnderreportMixin,
                      frozenset({COMP}), {"factor": 0.5},
                      stage="execution"),
        DeviationSpec("packet-drop", PacketDropMixin,
                      frozenset({COMP}), {}, stage="execution"),
        DeviationSpec("misroute", MisrouteMixin,
                      frozenset({COMP}), {}, stage="execution"),
        DeviationSpec("transit-misroute", TransitMisrouteMixin,
                      frozenset({COMP}), {}, stage="execution"),
        DeviationSpec("joint-copy-alter-and-understate",
                      type("JointMixin", (CopyAlterMixin, ChargeUnderstateMixin), {}),
                      frozenset({MP, COMP}),
                      {"scale": 2.0, "factor": 0.25}, plain_capable=False),
    )
}


def _deviant_class(base: type, spec: DeviationSpec) -> type:
    """Compose a deviant node class: mixin first so seams resolve to it."""
    return type(
        f"{spec.mixin.__name__}_{base.__name__}",
        (spec.mixin, base),
        {"dev_params": dict(spec.params)},
    )


def faithful_deviant_factory(spec: DeviationSpec, target: NodeId):
    """A FaithfulNodeFactory installing ``spec`` on ``target`` only."""
    deviant_cls = _deviant_class(FaithfulRoutingNode, spec)

    def factory(
        node_id: NodeId, cost: Cost, signing: SigningAuthority
    ) -> FaithfulRoutingNode:
        if node_id == target:
            return deviant_cls(node_id, cost, signing)
        return FaithfulRoutingNode(node_id, cost, signing)

    return factory


def plain_deviant_factory(spec: DeviationSpec, target: NodeId):
    """A PlainNodeFactory installing ``spec`` on ``target`` only."""
    if not spec.plain_capable:
        raise MechanismError(
            f"deviation {spec.name!r} has no counterpart in plain FPSS "
            "(it manipulates the faithful extension's checker machinery)"
        )
    deviant_cls = _deviant_class(FPSSNode, spec)

    def factory(node_id: NodeId, cost: Cost) -> FPSSNode:
        if node_id == target:
            return deviant_cls(node_id, cost)
        return FPSSNode(node_id, cost)

    return factory


def construction_deviations() -> Tuple[DeviationSpec, ...]:
    """Catalogue entries acting during the construction phases."""
    return tuple(
        spec
        for spec in DEVIATION_CATALOGUE.values()
        if spec.stage == "construction"
    )


def execution_deviations() -> Tuple[DeviationSpec, ...]:
    """Catalogue entries acting during the execution phase."""
    return tuple(
        spec for spec in DEVIATION_CATALOGUE.values() if spec.stage == "execution"
    )
