"""Collusion: the boundary of the paper's solution concept.

The paper designs for "ex post Nash (without collusion)" (Section 1).
This module makes the *boundary* of that guarantee executable: a
coalition consisting of a deviant principal together with **all** of
its checkers can evade the catch-and-punish machinery, because every
piece of evidence against a principal originates at its checkers.

Concretely, a :class:`ComplicitCheckerMixin` node performs its checker
role except that it never raises (or reports) flags about the protected
principal and never "sees" the principal's broadcast mismatches.  A
principal whose own tables stay internally consistent (e.g. the
false-route announcer, which computes honestly but *announces* shaded
costs) then passes BANK1/BANK2: its digests match its mirrors, and the
only witnesses — the checkers — stay silent.

This is not a bug in the reproduction; it is the paper's explicit
knowledge assumption surfaced as an experiment (benchmarks
``test_bench_collusion.py``).  Theorem 1's unilateral-deviation
guarantee remains intact: every coalition here has at least two
members.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..routing.graph import Cost
from ..sim.crypto import SigningAuthority
from ..sim.messages import Message, NodeId
from .manipulations import DeviationSpec, _deviant_class
from .node import FaithfulRoutingNode


class ComplicitCheckerMixin:
    """A checker that shields one principal from scrutiny.

    The class attribute ``protected`` names the coalition's principal.
    The node behaves faithfully in every other respect (its own tables,
    its own announcements, its checker duties toward other
    neighbours), so nothing else in the network can incriminate it.
    """

    protected: NodeId = None

    def on_rt_update(self, message: Message) -> None:
        """Skip the mirror comparison for the protected principal."""
        if message.src == self.protected and self.phase == "phase2":
            # Swallow the broadcast-vs-mirror comparison, then let the
            # principal-role processing proceed normally.
            mirror = self.mirrors.get(message.src)
            if mirror is not None and mirror.comp is not None:
                expected = mirror._expected_route
                if expected:
                    expected.popleft()
            # Skip FaithfulRoutingNode's observation by calling the
            # plain FPSS handler path with mirror checks removed.
            from ..routing.fpss import FPSSNode

            FPSSNode.on_rt_update(self, message)
            return
        super().on_rt_update(message)

    def on_price_update(self, message: Message) -> None:
        """Skip the mirror comparison for the protected principal."""
        if message.src == self.protected and self.phase == "phase2":
            mirror = self.mirrors.get(message.src)
            if mirror is not None and mirror.comp is not None:
                expected = mirror._expected_price
                if expected:
                    expected.popleft()
            from ..routing.fpss import FPSSNode

            FPSSNode.on_price_update(self, message)
            return
        super().on_price_update(message)

    def on_bank_request(self, message: Message) -> None:
        """Answer honestly, then scrub evidence about the protégé."""
        protected = self.protected
        mirror = self.mirrors.get(protected)
        if mirror is not None:
            # Clear any flags accumulated against the principal and
            # mute the pending-broadcast bookkeeping so checkpoint
            # flags cannot appear either.
            mirror.flags = [
                f for f in mirror.flags if f.principal != protected
            ]
            mirror._expected_route.clear()
            mirror._expected_price.clear()
            mirror._awaiting_copy.clear()
        super().on_bank_request(message)

    def report_mirror_digest_override(self) -> None:  # pragma: no cover
        """Placeholder for subclasses coordinating digest fabrication.

        The shipped coalition does not need it: a principal that only
        lies in *broadcasts* keeps its own tables equal to the honest
        replay, so truthful mirror digests already match.
        """


def coalition_factory(
    deviant_spec: DeviationSpec,
    principal: NodeId,
    accomplices: Iterable[NodeId],
):
    """A FaithfulNodeFactory wiring a full checker coalition.

    ``principal`` runs ``deviant_spec``; every node in ``accomplices``
    (which must cover *all* of the principal's neighbours for the
    evasion to work — one honest checker suffices to catch it) runs the
    complicit-checker behaviour.
    """
    accomplice_set: FrozenSet[NodeId] = frozenset(accomplices)
    deviant_cls = _deviant_class(FaithfulRoutingNode, deviant_spec)
    complicit_cls = type(
        "ComplicitChecker",
        (ComplicitCheckerMixin, FaithfulRoutingNode),
        {"protected": principal},
    )

    def factory(
        node_id: NodeId, cost: Cost, signing: SigningAuthority
    ) -> FaithfulRoutingNode:
        if node_id == principal:
            return deviant_cls(node_id, cost, signing)
        if node_id in accomplice_set:
            return complicit_cls(node_id, cost, signing)
        return FaithfulRoutingNode(node_id, cost, signing)

    return factory
