"""Detection vocabulary: flags, checkpoint decisions, run reports.

Checkers do the heavy lifting of re-running a principal's computation,
but they "do not actually catch manipulation problems; this task is
left to the checkpointing bank" (Section 4.3).  A :class:`Flag` is a
checker's structured observation; the bank turns flags plus digest
comparisons into :class:`CheckpointDecision` and, at the end of a run,
into a :class:`DetectionReport`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.messages import NodeId


class FlagKind(enum.Enum):
    """What a checker observed a principal doing wrong."""

    #: A broadcast differed from the mirror's replayed computation.
    BROADCAST_MISMATCH = "broadcast-mismatch"
    #: A table change was never broadcast (update suppression).
    SUPPRESSED_UPDATE = "suppressed-update"
    #: A broadcast arrived that the mirror never predicted.
    UNEXPECTED_BROADCAST = "unexpected-broadcast"
    #: A forwarded copy of the checker's own message was altered.
    COPY_FORGERY = "copy-forgery"
    #: A message the checker sent was never copy-returned.
    COPY_MISSING = "copy-missing"
    #: A copy claimed an author that is not a checker of the principal.
    SPOOFED_COPY = "spoofed-copy"
    #: A packet arrived off the certified lowest-cost path.
    MISROUTE = "misroute"

    #: Raised by the bank itself during settlement.
    PAYMENT_UNDERREPORT = "payment-underreport"
    PACKET_DROP = "packet-drop"
    DIGEST_MISMATCH = "digest-mismatch"


@dataclass(frozen=True)
class Flag:
    """One structured deviation observation."""

    kind: FlagKind
    checker: Optional[NodeId]
    principal: NodeId
    phase: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        kind: FlagKind,
        checker: Optional[NodeId],
        principal: NodeId,
        phase: str,
        **detail: Any,
    ) -> "Flag":
        """Convenience constructor with keyword detail."""
        return cls(
            kind=kind,
            checker=checker,
            principal=principal,
            phase=phase,
            detail=tuple(sorted(detail.items())),
        )

    def detail_dict(self) -> Dict[str, Any]:
        """Detail pairs as a dict."""
        return dict(self.detail)

    def sort_key(self) -> Tuple[str, ...]:
        """Canonical ordering key, stable across processes and runs.

        Two runs of one scenario must produce *comparable* flag
        multisets regardless of mirror iteration order — the parity
        the shared-replay equivalence tests assert — so ordering uses
        only repr-stable fields.
        """
        return (
            self.kind.value,
            repr(self.principal),
            repr(self.checker),
            self.phase,
            repr(self.detail),
        )


@dataclass
class CheckpointDecision:
    """The bank's verdict at one BANK1/BANK2-style checkpoint."""

    checkpoint: str
    green_light: bool
    suspects: List[NodeId] = field(default_factory=list)
    flags: List[Flag] = field(default_factory=list)
    digest_groups: Dict[NodeId, Dict[NodeId, str]] = field(default_factory=dict)

    @property
    def deviation_detected(self) -> bool:
        """True when the checkpoint ordered a restart."""
        return not self.green_light


@dataclass
class SettlementRecord:
    """Per-node monetary results of execution-phase settlement."""

    received: float = 0.0
    charged: float = 0.0
    penalties: float = 0.0
    reported_total: float = 0.0
    expected_total: float = 0.0


@dataclass
class DetectionReport:
    """Everything the bank found over a complete mechanism run."""

    checkpoint_decisions: List[CheckpointDecision] = field(default_factory=list)
    settlement_flags: List[Flag] = field(default_factory=list)
    restarts: int = 0
    progressed: bool = True

    def record(self, decision: CheckpointDecision) -> None:
        """Append one checkpoint decision, counting restarts."""
        self.checkpoint_decisions.append(decision)
        if decision.deviation_detected:
            self.restarts += 1

    @property
    def all_flags(self) -> List[Flag]:
        """Every flag from every checkpoint plus settlement."""
        flags: List[Flag] = []
        for decision in self.checkpoint_decisions:
            flags.extend(decision.flags)
        flags.extend(self.settlement_flags)
        return flags

    @property
    def detected_any(self) -> bool:
        """True if any deviation was detected anywhere in the run."""
        return self.restarts > 0 or bool(self.settlement_flags)

    def suspects(self) -> List[NodeId]:
        """Union of nodes implicated by checkpoints and settlement."""
        implicated: List[NodeId] = []
        for decision in self.checkpoint_decisions:
            for suspect in decision.suspects:
                if suspect not in implicated:
                    implicated.append(suspect)
        for flag in self.settlement_flags:
            if flag.principal not in implicated:
                implicated.append(flag.principal)
        return implicated
