"""Checked (faithful) construction across reconvergence epochs.

Reproduces: Section 4 of Shneidman & Parkes (PODC'04), extended to the
recomputation setting the paper's faithfulness claims assume: when the
network changes, the construction phases re-run and every checker
mirror must *re-anchor* on the new topology before replaying.

Epoch semantics
---------------
:func:`run_checked_churn` drives a fully mirrored network (every node a
:class:`~repro.faithful.node.FaithfulRoutingNode` checking all of its
neighbours) through an initial construction plus one reconvergence
epoch per entry of a :class:`~repro.sim.churn.ChurnSchedule`.  Each
epoch applies its events at network quiescence, then re-runs both
construction phases from scratch — the paper's recomputation protocol,
where DATA1 re-floods and phase 2 restarts on the post-event graph.

Mirror re-anchoring is the load-bearing invariant: with shared
checking, :meth:`~repro.routing.kernel.MirrorKernelPool.new_epoch` must
be called before every phase-2 (re)start so no restarted mirror ever
attaches to a consumed op log.  Skipping the bump (``epoch_bump=False``,
kept as a regression seam) is *detected, never silent*: a stale shared
kernel's seed no longer matches the checkers' freshly derived one, so
:meth:`~repro.routing.kernel.MirrorKernelPool.acquire` refuses to share
(counting ``seed_mismatches``) and every mirror falls back to its
private per-neighbour replay — digests stay correct, the pool stats
scream.

Detection flags carry the epoch they fired in: each
:class:`CheckedEpoch` holds exactly the flags its own quiescence
checkpoint produced (mirrors reset their flag lists when they re-anchor
at the epoch boundary), so a deviation injected in epoch *k* surfaces
in epoch *k*'s report, not smeared across the run.

Membership churn (``leave`` / ``join``) is out of scope here — the
checker relation "every neighbour checks the node" is rebuilt per
epoch, but the bank/identity plumbing assumes a fixed principal set;
use :mod:`repro.routing.dynamic` for membership churn on the plain
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConvergenceError, SimulationError
from ..obs.trace import emit_counters, emit_marker
from ..routing.dynamic import verify_epoch_equivalence
from ..routing.convergence import topology_from_graph
from ..routing.graph import ASGraph, NodeId
from ..routing.kernel import KernelStats, MirrorKernelPool
from ..sim.churn import ChurnEvent, ChurnSchedule, apply_churn_epoch
from ..sim.simulator import Simulator
from .audit import Flag
from .node import FaithfulRoutingNode, encode_flag
from .protocol import FaithfulNodeFactory, TrafficMatrix
from .settlement import NettingLedger

#: Event kinds the faithful epoch runner accepts (membership-preserving).
CHECKED_EVENT_KINDS: Tuple[str, ...] = ("cost", "link-down", "link-up")


@dataclass
class CheckedEpoch:
    """One construction pass (epoch 0 = initial, then one per batch).

    ``flags`` are the wire-encoded mirror flags raised *within this
    epoch's* checkpoint — the epoch a flag fired in is the epoch of the
    report holding it.
    """

    epoch: int
    events: Tuple[ChurnEvent, ...]
    graph: ASGraph
    phase1_events: int
    phase2_events: int
    flags: List[Tuple] = field(default_factory=list)
    #: Execution-phase results (zeros unless traffic was supplied).
    routed_flows: int = 0
    unroutable_flows: int = 0
    payments_total: float = 0.0
    #: Settlement netting results (zeros unless traffic was supplied):
    #: the epoch's declared payment deltas netted into one batch
    #: transfer per debtor vs. the per-flow transfer count.
    net_transfers: int = 0
    net_payouts: int = 0
    per_flow_transfers: int = 0


@dataclass
class CheckedChurnRun:
    """A checked network driven through reconvergence epochs."""

    simulator: Simulator
    nodes: Dict[NodeId, FaithfulRoutingNode]
    graph: ASGraph
    pool: Optional[MirrorKernelPool]
    initial: CheckedEpoch
    epochs: List[CheckedEpoch] = field(default_factory=list)
    #: The run's netting ledger: each epoch's declared DATA4 payment
    #: deltas recorded as obligations and closed into batch transfers
    #: (None when the run carried no traffic).
    ledger: Optional[NettingLedger] = None

    @property
    def all_flags(self) -> List[Tuple[int, Tuple]]:
        """Every flag of the run as ``(epoch, encoded_flag)``."""
        out = [(0, f) for f in self.initial.flags]
        for report in self.epochs:
            out.extend((report.epoch, f) for f in report.flags)
        return out

    def kernel_stats(self) -> KernelStats:
        """Aggregated shared-replay counters (zeroed without sharing)."""
        if self.pool is None:
            return KernelStats()
        return self.pool.collected_stats()

    @property
    def seed_mismatches(self) -> int:
        """Sharing refusals — nonzero when an epoch bump was missed."""
        return self.kernel_stats().seed_mismatches


def _resolve_delay(link_delays, a: NodeId, b: NodeId) -> float:
    if callable(link_delays):
        return float(link_delays(a, b))
    if isinstance(link_delays, dict):
        return float(link_delays.get(frozenset((a, b)), 1.0))
    return float(link_delays)


def run_checked_churn(
    graph: ASGraph,
    schedule: ChurnSchedule,
    traffic: Optional[TrafficMatrix] = None,
    shared_checking: bool = True,
    epoch_bump: bool = True,
    link_delays=1.0,
    batch_delivery: bool = True,
    max_events: int = 8_000_000,
    node_factory: Optional[FaithfulNodeFactory] = None,
    verify: bool = True,
    on_epoch_start: Optional[
        Callable[[int, Dict[NodeId, FaithfulRoutingNode]], None]
    ] = None,
) -> CheckedChurnRun:
    """Drive a fully mirrored network through reconvergence epochs.

    Every graph along the schedule (including the start) must be
    biconnected — the checking relation needs it.  With ``verify`` the
    runner asserts, after every epoch, that each node's DATA1/DATA2/
    DATA3* digests are bit-identical to a fresh
    :func:`~repro.routing.kernel.kernel_fixed_point` run on the
    post-event graph and that every live mirror agrees with its
    principal.  ``epoch_bump=False`` deliberately skips the
    :meth:`~repro.routing.kernel.MirrorKernelPool.new_epoch` call on
    reconvergence (regression seam; see module docstring).  Optional
    ``traffic`` is routed after every epoch (including the initial
    construction), accruing per-epoch VCG payments on the reports.

    ``on_epoch_start(epoch, nodes)`` fires before each reconvergence
    epoch's events are applied — the injection seam for deviations that
    must start in a *later* epoch (a node turning rational mid-run),
    which is how the tests pin per-epoch detection.
    """
    for events in schedule.epochs:
        for event in events:
            if event.kind not in CHECKED_EVENT_KINDS:
                raise SimulationError(
                    f"checked churn supports kinds {CHECKED_EVENT_KINDS}, "
                    f"got {event.kind!r}; membership churn runs on the "
                    f"plain mechanism (repro.routing.dynamic)"
                )
    graph.require_biconnected()
    simulator = Simulator(
        topology_from_graph(graph, delay=link_delays),
        trace_enabled=False,
        batch_delivery=batch_delivery,
    )
    pool = MirrorKernelPool() if shared_checking else None
    factory = node_factory or (
        lambda node_id, cost, signing: FaithfulRoutingNode(node_id, cost, signing)
    )
    nodes: Dict[NodeId, FaithfulRoutingNode] = {}
    for node_id in graph.nodes:
        node = factory(node_id, graph.cost(node_id), None)
        node.mirror_pool = pool
        nodes[node_id] = node
        simulator.add_node(node)
    node_ids = tuple(sorted(nodes, key=repr))
    flows = sorted(dict(traffic or {}).items(), key=repr)
    ledger = NettingLedger() if flows else None
    #: Last-seen declared payment totals per payer; the per-epoch
    #: delta is what gets recorded as this epoch's obligations.
    payment_snapshots: Dict[NodeId, Dict[NodeId, float]] = {
        n: {} for n in node_ids
    }

    def construct(epoch: int, events: Tuple[ChurnEvent, ...], current: ASGraph) -> CheckedEpoch:
        for node_id in node_ids:
            simulator.schedule_local(
                node_id, 0.0, nodes[node_id].start_phase1, label="phase1"
            )
        phase1_events = simulator.run_until_quiescent(max_events=max_events)
        for node_id in node_ids:
            node = nodes[node_id]
            live = set(current.neighbors(node_id))
            # Re-anchor the checking relation on the new topology:
            # mirrors of ex-neighbours are dropped (their flags were
            # already collected at the previous epoch's checkpoint).
            for principal in tuple(node.mirrors):
                if principal not in live:
                    del node.mirrors[principal]
            node.prepare_checking(
                {
                    neighbor: current.neighbors(neighbor)
                    for neighbor in current.neighbors(node_id)
                }
            )
        if pool is not None and (epoch == 0 or epoch_bump):
            pool.new_epoch()
            emit_marker("mirror.epoch", sim_time=simulator.now, epoch=epoch)
        for node_id in node_ids:
            simulator.schedule_local(
                node_id, 0.0, nodes[node_id].start_phase2, label="phase2"
            )
        phase2_events = simulator.run_until_quiescent(max_events=max_events)

        flags: List[Flag] = []
        for node_id in node_ids:
            node = nodes[node_id]
            for _principal, mirror in sorted(
                node.mirrors.items(), key=lambda kv: repr(kv[0])
            ):
                if mirror.comp is None:
                    continue
                flags.extend(mirror.checkpoint_flags())
        flags.sort(key=Flag.sort_key)

        report = CheckedEpoch(
            epoch=epoch,
            events=tuple(events),
            graph=current,
            phase1_events=phase1_events,
            phase2_events=phase2_events,
            flags=[encode_flag(f) for f in flags],
        )
        if flows:
            _route_epoch(report)
        if verify and not report.flags:
            verify_epoch_equivalence(current, nodes)
            _verify_mirror_agreement(nodes)
        if epoch > 0:
            emit_counters(
                "churn",
                {
                    "checked_epochs": 1,
                    "checked_flags": len(report.flags),
                    "reconvergence_events": phase1_events + phase2_events,
                },
            )
        return report

    def _route_epoch(report: CheckedEpoch) -> None:
        before = sum(nodes[n].data4.total for n in node_ids)
        for node_id in node_ids:
            nodes[node_id].start_execution()
        for (source, destination), volume in flows:
            if volume <= 0 or source == destination:
                continue
            node = nodes[source]
            assert node.comp is not None
            entry = node.comp.routing.entry(destination)
            if entry is None:
                report.unroutable_flows += 1
                continue
            simulator.schedule_local(
                source,
                0.0,
                lambda n=node, d=destination, v=volume: n.originate_flow(d, v),
                label="originate",
            )
            report.routed_flows += 1
            # One per-flow transfer per transit hop on the LCP — the
            # payment count netting is measured against.
            report.per_flow_transfers += max(0, len(entry.path) - 2)
        simulator.run_until_quiescent(max_events=max_events)
        report.payments_total = (
            sum(nodes[n].data4.total for n in node_ids) - before
        )
        _net_epoch(report)

    def _net_epoch(report: CheckedEpoch) -> None:
        """Net the epoch's declared payment deltas into batch transfers.

        Obligations are the *declared* DATA4 increments (what each
        payer owes its transit carriers for this epoch's flows);
        catching under-declaration is the settlement audit's job, not
        the netting layer's.
        """
        assert ledger is not None
        closure_time = float(report.epoch)
        for node_id in node_ids:
            snapshot = payment_snapshots[node_id]
            for payee, total in sorted(
                nodes[node_id].report_payments().items(), key=repr
            ):
                delta = total - snapshot.get(payee, 0.0)
                if delta > 0 and payee != node_id:
                    ledger.record(
                        node_id, payee, delta, accepted_at=closure_time
                    )
                snapshot[payee] = total
        transfers = ledger.close_epoch(closure_time)
        report.net_transfers = len(transfers)
        report.net_payouts = sum(len(t.payouts) for t in transfers)
        emit_counters(
            "bank",
            {
                "nets": 1,
                "net_transfers": report.net_transfers,
                "net_payouts": report.net_payouts,
                "transfer_records": report.per_flow_transfers,
            },
        )

    initial = construct(0, (), graph)
    run = CheckedChurnRun(
        simulator=simulator,
        nodes=nodes,
        graph=graph,
        pool=pool,
        initial=initial,
        ledger=ledger,
    )
    current = graph
    for index, events in enumerate(schedule.epochs, start=1):
        if on_epoch_start is not None:
            on_epoch_start(index, nodes)
        current = apply_churn_epoch(current, events)
        current.require_biconnected()
        topology = simulator.topology
        for event in events:
            if event.kind == "cost":
                nodes[event.node].true_cost = float(event.cost)  # type: ignore[index,arg-type]
            elif event.kind == "link-down":
                a, b = event.link  # type: ignore[misc]
                topology.remove_link(a, b)
            else:  # link-up
                a, b = event.link  # type: ignore[misc]
                topology.add_link(a, b, delay=_resolve_delay(link_delays, a, b))
        run.graph = current
        run.epochs.append(construct(index, events, current))
    return run


def _verify_mirror_agreement(nodes: Dict[NodeId, FaithfulRoutingNode]) -> None:
    """Every live mirror's replayed digests equal its principal's own."""
    for node_id in sorted(nodes, key=repr):
        node = nodes[node_id]
        for principal, mirror in node.mirrors.items():
            if mirror.comp is None:
                continue
            principal_comp = nodes[principal].comp
            assert principal_comp is not None
            if (
                mirror.routing_digest() != principal_comp.routing_digest()
                or mirror.pricing_digest() != principal_comp.pricing_digest()
            ):
                raise ConvergenceError(
                    f"mirror of {principal!r} at {node_id!r} disagrees with "
                    f"the principal's own tables after reconvergence"
                )


__all__ = [
    "CHECKED_EVENT_KINDS",
    "CheckedChurnRun",
    "CheckedEpoch",
    "run_checked_churn",
]
