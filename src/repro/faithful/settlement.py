"""Epoch netting, batch transfers, audit, and forced settlement.

The paper's bank enforces payments per flow; at millions of flows per
settle that means millions of tiny transfers.  Production settlement
systems (the Golem Concent service is the model here) instead net
obligations per epoch and pay **lump sums**: one batch transfer per
net debtor, stamped with a ``closure_time`` that covers every
obligation accepted before it.  Because the signed obligation trace is
kept, any party can later *audit* — reconstruct the unpaid balance of
a debtor/creditor pair from the trace and the transfer list — and the
bank can run *forced settlement*: draw the audited shortfall from the
debtor's deposit, epsilon-penalty preserved.

Exactness contract
------------------
All money reductions in this module use :func:`math.fsum`, which is
exactly rounded over its input multiset.  Netting groups obligations
by unordered principal pair and reduces each pair's *signed*
contributions with one fsum; :func:`net_positions` performs the same
pair-grouped reduction for any transfer list.  Per-flow transfers and
the batch transfers netted from them therefore produce **bit-identical**
net positions — the property `tests/faithful/test_settlement_
equivalence.py` checks — and after :meth:`NettingLedger.close_epoch`
every pair audits to an unpaid balance of exactly ``0.0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ProtocolError
from ..sim.messages import NodeId


@dataclass(frozen=True)
class Obligation:
    """One signed transit-payment obligation (the trace unit)."""

    debtor: NodeId
    creditor: NodeId
    amount: float
    #: Time the bank accepted (signed) the obligation.
    accepted_at: float


@dataclass(frozen=True)
class BatchTransfer:
    """One lump-sum payment from a net debtor.

    ``closure_time`` covers every obligation accepted at or before it:
    the payment discharges the debtor's whole netted balance for the
    epoch, Concent-style, instead of one transfer per flow.
    """

    debtor: NodeId
    closure_time: float
    #: Repr-sorted ``(creditor, amount)`` rows, every amount > 0.
    payouts: Tuple[Tuple[NodeId, float], ...]

    @property
    def total(self) -> float:
        """The lump sum the debtor pays out."""
        return math.fsum(amount for _creditor, amount in self.payouts)

    def triples(self) -> List[Tuple[NodeId, NodeId, float]]:
        """The transfer as (payer, payee, amount) rows."""
        return [
            (self.debtor, creditor, amount) for creditor, amount in self.payouts
        ]


@dataclass(frozen=True)
class AuditReport:
    """Reconstructed balance of one debtor->creditor direction."""

    debtor: NodeId
    creditor: NodeId
    at_time: float
    #: Net amount the debtor owed the creditor from the signed trace.
    owed: float
    #: Net amount already discharged by batch transfers.
    paid: float

    @property
    def unpaid(self) -> float:
        """Outstanding balance (can be negative when overpaid)."""
        return self.owed - self.paid

    @property
    def shortfall(self) -> float:
        """The enforceable part of the balance (never negative)."""
        return max(0.0, self.owed - self.paid)


@dataclass(frozen=True)
class ForcedPayment:
    """Outcome of one forced-settlement enforcement action."""

    debtor: NodeId
    creditor: NodeId
    #: Audited unpaid balance at enforcement time.
    shortfall: float
    #: Amount actually drawn from the debtor's deposit.
    drawn: float
    #: Epsilon penalty applied on top of the draw.
    penalty: float


def _pair_key(a: NodeId, b: NodeId) -> Tuple[NodeId, NodeId]:
    """Canonical unordered pair (repr-sorted endpoints)."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


@dataclass
class NettingLedger:
    """Per-epoch accumulation of transit obligations between pairs.

    Obligations recorded via :meth:`record` stay *pending* until
    :meth:`close_epoch` nets them — one :class:`BatchTransfer` per net
    debtor — and archives them on the signed ``trace`` for later
    audit.  The ledger never forgets: ``trace`` and ``transfers`` are
    the inputs to :func:`settlement_audit` and
    :func:`forced_settlement`.
    """

    #: Obligations recorded but not yet netted into a batch transfer.
    _pending: List[Obligation] = field(default_factory=list)
    #: The full signed obligation trace (append-only, audit input).
    trace: List[Obligation] = field(default_factory=list)
    #: Every batch transfer issued so far (append-only).
    transfers: List[BatchTransfer] = field(default_factory=list)
    epochs_closed: int = 0

    def record(
        self, debtor: NodeId, creditor: NodeId, amount: float, accepted_at: float
    ) -> None:
        """Accept one signed obligation into the open epoch."""
        if debtor == creditor:
            raise ProtocolError(
                f"obligation debtor and creditor are the same node: {debtor!r}"
            )
        obligation = Obligation(debtor, creditor, amount, accepted_at)
        self._pending.append(obligation)
        self.trace.append(obligation)

    def record_many(
        self,
        obligations: Iterable[Tuple[NodeId, NodeId, float]],
        accepted_at: float,
    ) -> None:
        """Accept a batch of (debtor, creditor, amount) obligations."""
        for debtor, creditor, amount in obligations:
            self.record(debtor, creditor, amount, accepted_at=accepted_at)

    @property
    def pending_count(self) -> int:
        """Obligations awaiting the next epoch close."""
        return len(self._pending)

    def close_epoch(self, closure_time: float) -> List[BatchTransfer]:
        """Net all pending obligations into one transfer per debtor.

        ``closure_time`` must cover every pending obligation (none
        accepted after it) — the Concent rule that a batch payment's
        closure time bounds what it discharges.  Pairwise nets are
        fsum-exact; transfers and their payouts are repr-sorted.
        """
        for obligation in self._pending:
            if obligation.accepted_at > closure_time:
                raise ProtocolError(
                    "closure_time "
                    f"{closure_time} does not cover obligation accepted at "
                    f"{obligation.accepted_at}"
                )
        # Signed contribution per unordered pair: positive means the
        # repr-smaller endpoint owes the repr-larger one.
        contributions: Dict[Tuple[NodeId, NodeId], List[float]] = {}
        for obligation in self._pending:
            key = _pair_key(obligation.debtor, obligation.creditor)
            signed = (
                obligation.amount
                if obligation.debtor == key[0]
                else -obligation.amount
            )
            contributions.setdefault(key, []).append(signed)

        payouts: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
        for key in sorted(contributions, key=repr):
            net = math.fsum(contributions[key])
            if net > 0:
                payouts.setdefault(key[0], []).append((key[1], net))
            elif net < 0:
                payouts.setdefault(key[1], []).append((key[0], -net))

        transfers = [
            BatchTransfer(
                debtor=debtor,
                closure_time=closure_time,
                payouts=tuple(sorted(payouts[debtor], key=repr)),
            )
            for debtor in sorted(payouts, key=repr)
        ]
        self.transfers.extend(transfers)
        self._pending.clear()
        self.epochs_closed += 1
        return transfers


TransferLike = Union[BatchTransfer, Tuple[NodeId, NodeId, float]]


def net_positions(
    transfers: Iterable[TransferLike],
    nodes: Optional[Sequence[NodeId]] = None,
) -> Dict[NodeId, float]:
    """Net money position of every node touched by the transfers.

    Accepts raw ``(payer, payee, amount)`` triples,``BatchTransfer``
    instances, or a mix.  Positions are computed with the same
    pair-grouped signed-fsum reduction :meth:`NettingLedger.
    close_epoch` uses, so a per-flow transfer list and the batch
    transfers netted from it yield **bit-identical** positions.
    ``nodes`` pre-seeds keys for nodes that may not appear in any
    transfer (their position is 0.0).
    """
    contributions: Dict[Tuple[NodeId, NodeId], List[float]] = {}
    for transfer in transfers:
        if isinstance(transfer, BatchTransfer):
            rows = transfer.triples()
        else:
            rows = [transfer]
        for payer, payee, amount in rows:
            key = _pair_key(payer, payee)
            signed = amount if payer == key[0] else -amount
            contributions.setdefault(key, []).append(signed)

    pair_terms: Dict[NodeId, List[float]] = {}
    if nodes is not None:
        for node in sorted(nodes, key=repr):
            pair_terms.setdefault(node, [])
    for key in sorted(contributions, key=repr):
        value = math.fsum(contributions[key])
        # key[0] pays value toward key[1] (negative when reversed).
        pair_terms.setdefault(key[0], []).append(-value)
        pair_terms.setdefault(key[1], []).append(value)
    return {node: math.fsum(terms) for node, terms in pair_terms.items()}


def settlement_audit(
    trace: Sequence[Obligation],
    transfers: Sequence[BatchTransfer],
    debtor: NodeId,
    creditor: NodeId,
    at_time: float,
) -> AuditReport:
    """Reconstruct the unpaid balance of a pair from the signed record.

    Concent-style: ``owed`` is the signed net of every traced
    obligation between the two nodes accepted at or before
    ``at_time`` (positive in the debtor->creditor direction); ``paid``
    is the signed net of every batch-transfer payout between them with
    ``closure_time`` at or before ``at_time``.  Both reductions are
    fsum-exact, so right after an epoch close the unpaid balance of
    every settled pair is exactly ``0.0``.
    """
    owed_terms: List[float] = []
    for obligation in trace:
        if obligation.accepted_at > at_time:
            continue
        if obligation.debtor == debtor and obligation.creditor == creditor:
            owed_terms.append(obligation.amount)
        elif obligation.debtor == creditor and obligation.creditor == debtor:
            owed_terms.append(-obligation.amount)

    paid_terms: List[float] = []
    for transfer in transfers:
        if transfer.closure_time > at_time:
            continue
        for payee, amount in transfer.payouts:
            if transfer.debtor == debtor and payee == creditor:
                paid_terms.append(amount)
            elif transfer.debtor == creditor and payee == debtor:
                paid_terms.append(-amount)

    return AuditReport(
        debtor=debtor,
        creditor=creditor,
        at_time=at_time,
        owed=math.fsum(owed_terms),
        paid=math.fsum(paid_terms),
    )


def forced_settlement(
    ledger: NettingLedger,
    deposits: MutableMapping[NodeId, float],
    epsilon: float = 0.01,
    at_time: float = 0.0,
    tolerance: float = 1e-9,
) -> List[ForcedPayment]:
    """Enforce audited shortfalls against the debtors' deposits.

    Audits every principal pair that appears in the signed trace up to
    ``at_time``; where the unpaid balance exceeds ``tolerance``, draws
    ``min(deposit, shortfall)`` from the defaulting debtor's deposit,
    issues a covering :class:`BatchTransfer` for the drawn amount, and
    applies the paper's epsilon penalty on top — deviation (here:
    non-payment) must end strictly below the faithful outcome.

    Money conservation: the sum of deposit draws equals the sum of
    forced transfer totals exactly, and no deposit goes negative.
    """
    pairs: List[Tuple[NodeId, NodeId]] = []
    seen: Dict[Tuple[NodeId, NodeId], bool] = {}
    for obligation in ledger.trace:
        if obligation.accepted_at > at_time:
            continue
        key = _pair_key(obligation.debtor, obligation.creditor)
        if key not in seen:
            seen[key] = True
            pairs.append(key)

    outcomes: List[ForcedPayment] = []
    for a, b in sorted(pairs, key=repr):
        report = settlement_audit(ledger.trace, ledger.transfers, a, b, at_time)
        if abs(report.unpaid) <= tolerance:
            continue
        if report.unpaid > 0:
            debtor, creditor, shortfall = a, b, report.unpaid
        else:
            debtor, creditor, shortfall = b, a, -report.unpaid
        balance = deposits.get(debtor, 0.0)
        drawn = min(balance, shortfall)
        if drawn < 0:
            drawn = 0.0
        deposits[debtor] = balance - drawn
        if drawn > 0:
            ledger.transfers.append(
                BatchTransfer(
                    debtor=debtor,
                    closure_time=at_time,
                    payouts=((creditor, drawn),),
                )
            )
        outcomes.append(
            ForcedPayment(
                debtor=debtor,
                creditor=creditor,
                shortfall=shortfall,
                drawn=drawn,
                penalty=epsilon,
            )
        )
    return outcomes


def synthesize_execution_reports(
    graph: "Any",
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    repeats: int = 1,
) -> Dict[NodeId, Dict[str, Any]]:
    """Honest execution reports straight from the VCG route bundle.

    Builds the exact wire format :meth:`repro.faithful.node.
    CheckedNode.execution_report` produces — receipts, first-hop
    observations with per-transit charges, delivered rows, and
    consistent ``reported_payments`` — without simulating packet
    events, so settlement benchmarks and the sweep probe can feed the
    bank millions of observation rows cheaply.  ``repeats`` replays
    each traffic flow that many times (distinct observation rows, one
    aggregated receipt row per hop).
    """
    from ..routing.vcg_payments import all_pairs_payments

    if repeats < 1:
        raise ProtocolError(f"repeats must be >= 1, got {repeats}")
    payments = all_pairs_payments(graph)
    receipts: Dict[NodeId, Dict[Tuple[NodeId, NodeId], Dict[NodeId, float]]] = {}
    observations: Dict[NodeId, List[Tuple]] = {}
    delivered: Dict[NodeId, Dict[Tuple[NodeId, NodeId], float]] = {}
    paid: Dict[NodeId, Dict[NodeId, List[float]]] = {}

    for (source, destination), volume in sorted(traffic.items(), key=repr):
        if volume <= 0 or source == destination:
            continue
        bundle = payments[(source, destination)]
        path = bundle.route.path
        flow = (source, destination)
        charges = [
            (transit, bundle.payments[transit] * volume)
            for transit in path[1:-1]
        ]
        first_hop = path[1]
        rows = observations.setdefault(first_hop, [])
        for _repeat in range(repeats):
            rows.append((source, destination, volume, path, charges))
        for index in range(1, len(path)):
            receiver = path[index]
            sender = path[index - 1]
            receipts.setdefault(receiver, {}).setdefault(flow, {})[sender] = (
                volume * repeats
            )
        flows = delivered.setdefault(path[-1], {})
        flows[flow] = flows.get(flow, 0.0) + volume * repeats
        payees = paid.setdefault(source, {})
        for transit, amount in charges:
            terms = payees.setdefault(transit, [])
            for _repeat in range(repeats):
                terms.append(amount)

    reports: Dict[NodeId, Dict[str, Any]] = {}
    for node in sorted(graph.nodes, key=repr):
        reports[node] = {
            "reported_payments": sorted(
                (
                    (payee, math.fsum(terms))
                    for payee, terms in paid.get(node, {}).items()
                ),
                key=repr,
            ),
            "receipts": [
                (origin, dest, sender, volume)
                for (origin, dest), senders in sorted(
                    receipts.get(node, {}).items(), key=repr
                )
                for sender, volume in sorted(senders.items(), key=repr)
            ],
            "delivered": [
                (origin, dest, volume)
                for (origin, dest), volume in sorted(
                    delivered.get(node, {}).items(), key=repr
                )
            ],
            "observations": observations.get(node, []),
            "flags": [],
        }
    return reports
