"""Reduce sweep results into per-cell summaries and write artifacts.

A *cell* is one combination of the sweep's ``group_by`` fields
(typically topology x size x traffic model); seeds vary within a cell.
:func:`summarize` reduces every numeric metric in a cell to
``(count, mean, std, min, max)``, which is what the paper-style claims
("overpayment averages X on family Y") need.

Artifacts are plain ``csv``/``json`` files, and :func:`write_artifacts`
is *fully deterministic*: rows are sorted by content key, columns
follow the spec schema plus the sorted union of metric names, and JSON
keys are sorted.  Two runs of the same grid — serial, sharded+merged,
or killed+resumed — therefore produce byte-identical
``results.csv`` / ``summary.csv`` / ``sweep.json``; the only volatile
field (per-cell ``wall_time``) lives in ``cells.jsonl`` records only.
Every file is written to a temporary sibling and atomically renamed,
so a kill mid-finalise never leaves a half artifact behind.
"""

from __future__ import annotations

import csv
import json
import math
import os
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .runner import ScenarioResult
from .spec import ScenarioSpec

#: ((field, value), ...) — hashable, sorted by the group_by order.
CellKey = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number reduction of one metric over one cell."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        """Summarise one metric series (count/mean/std/min/max)."""
        if not values:
            raise ExperimentError("cannot summarise an empty series")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
        )


@dataclass(frozen=True)
class CellSummary:
    """One grid cell: its key, scenario counts, and metric stats."""

    key: CellKey
    scenarios: int
    failures: int
    stats: Mapping[str, SummaryStats]

    def label(self) -> str:
        """Human-readable cell key, e.g. ``probe=payments, size=16``."""
        return ", ".join(f"{name}={value}" for name, value in self.key)


def summarize(
    results: Sequence[ScenarioResult],
    group_by: Sequence[str] = ("topology", "size", "traffic"),
) -> List[CellSummary]:
    """Per-cell summary statistics over every numeric metric.

    Failed scenarios count toward ``failures`` but contribute no
    metric samples (their probe values are absent, and mixing partial
    rows would silently skew the means).
    """
    cells: Dict[CellKey, List[ScenarioResult]] = {}
    order: List[CellKey] = []
    for result in results:
        spec_row = result.spec.to_dict()
        missing = [name for name in group_by if name not in spec_row]
        if missing:
            raise ExperimentError(f"unknown group_by fields: {missing}")
        key = tuple((name, spec_row[name]) for name in group_by)
        if key not in cells:
            cells[key] = []
            order.append(key)
        cells[key].append(result)

    summaries: List[CellSummary] = []
    for key in order:
        members = cells[key]
        ok = [r for r in members if r.ok]
        series: Dict[str, List[float]] = {}
        for result in ok:
            for metric, value in result.metrics().items():
                series.setdefault(metric, []).append(float(value))
        summaries.append(
            CellSummary(
                key=key,
                scenarios=len(members),
                failures=len(members) - len(ok),
                stats={
                    metric: SummaryStats.of(values)
                    for metric, values in sorted(series.items())
                },
            )
        )
    return summaries


def _result_columns(results: Sequence[ScenarioResult]) -> List[str]:
    """Deterministic column order, independent of row order.

    Fixed prefix (key, id, spec schema fields, structural metrics),
    then the *sorted* union of probe metric names, then ``error`` —
    so shards with different probes merge into the same header.
    """
    spec_fields = [
        f.name
        for f in fields(ScenarioSpec)
        if f.name != "faithfulness_deviations"  # not CSV-representable
    ]
    fixed = (
        ["cell_key", "scenario_id"]
        + spec_fields
        + list(ScenarioResult.STRUCTURAL_METRICS)
    )
    probe_metrics = sorted(
        {
            name
            for result in results
            for name in result.values
            if name not in fixed
        }
    )
    return fixed + probe_metrics + ["error"]


def _atomic_replace(path: str, write_body) -> str:
    """Write via a temporary sibling and rename into place."""
    temporary = path + ".tmp"
    with open(temporary, "w", newline="") as handle:
        write_body(handle)
    os.replace(temporary, path)
    return path


def write_results_csv(
    results: Sequence[ScenarioResult], path: str
) -> str:
    """One row per scenario; the union of all row keys as columns."""
    columns = _result_columns(results)

    def body(handle) -> None:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for result in results:
            writer.writerow(result.to_row())

    return _atomic_replace(path, body)


def write_summary_csv(
    summaries: Sequence[CellSummary], path: str
) -> str:
    """One row per (cell, metric) with the five summary statistics."""
    group_fields: List[str] = []
    for summary in summaries:
        for name, _ in summary.key:
            if name not in group_fields:
                group_fields.append(name)
    columns = group_fields + [
        "metric",
        "count",
        "mean",
        "std",
        "min",
        "max",
        "scenarios",
        "failures",
    ]

    def body(handle) -> None:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for summary in summaries:
            cell = dict(summary.key)
            for metric, stats in summary.stats.items():
                row = dict(cell)
                row.update(
                    metric=metric,
                    count=stats.count,
                    mean=stats.mean,
                    std=stats.std,
                    min=stats.minimum,
                    max=stats.maximum,
                    scenarios=summary.scenarios,
                    failures=summary.failures,
                )
                writer.writerow(row)

    return _atomic_replace(path, body)


def write_sweep_json(
    results: Sequence[ScenarioResult],
    summaries: Sequence[CellSummary],
    path: str,
    name: str = "sweep",
    group_by: Sequence[str] = ("topology", "size", "traffic"),
) -> str:
    """The whole sweep — rows and summaries — as one JSON document.

    ``name`` and ``group_by`` are recorded in the document, so a later
    ``sweep-merge`` can reproduce the run's own aggregation (and hence
    byte-identical artifacts) without the flags being repeated.
    """
    document = {
        "name": name,
        "group_by": list(group_by),
        "scenarios": [result.to_row() for result in results],
        "summaries": [
            {
                "cell": dict(summary.key),
                "scenarios": summary.scenarios,
                "failures": summary.failures,
                "metrics": {
                    metric: {
                        "count": stats.count,
                        "mean": stats.mean,
                        "std": stats.std,
                        "min": stats.minimum,
                        "max": stats.maximum,
                    }
                    for metric, stats in summary.stats.items()
                },
            }
            for summary in summaries
        ],
    }

    def body(handle) -> None:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    return _atomic_replace(path, body)


def write_cells_jsonl(
    results: Sequence[ScenarioResult], path: str
) -> str:
    """Rewrite the per-cell record store canonically (one JSON line each).

    The runner streams append-order records during a run; finalising
    rewrites them in the given (canonical) order, deduplicated, which
    is also what makes a finished artifact directory a clean resume
    source.  Records keep ``wall_time``, so this is the one artifact
    that is *not* byte-stable across runs.
    """

    def body(handle) -> None:
        for result in results:
            handle.write(
                json.dumps(
                    result.to_record(),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )

    return _atomic_replace(path, body)


def write_artifacts(
    results: Sequence[ScenarioResult],
    summaries: Optional[Sequence[CellSummary]] = None,
    out_dir: str = "sweep-artifacts",
    name: str = "sweep",
    group_by: Sequence[str] = ("topology", "size", "traffic"),
) -> Dict[str, str]:
    """Write the standard artifact set into ``out_dir``.

    Rows are first put into canonical order (sorted by content key),
    which is what makes the output a pure function of the *set* of
    results: serial, sharded+merged, and killed+resumed runs of one
    grid write byte-identical ``results.csv`` / ``summary.csv`` /
    ``sweep.json``.  When ``summaries`` is ``None`` they are computed
    here from the canonically ordered rows with ``group_by`` (pass
    precomputed summaries only if they came from canonically ordered
    results, or summary bytes will depend on input order).

    Returns the mapping of artifact kind to path: ``results.csv``
    (per-scenario rows), ``summary.csv`` (per-cell statistics),
    ``sweep.json`` (everything), and ``cells.jsonl`` (resumable
    per-cell records).
    """
    results = sorted(results, key=lambda r: r.spec.content_key())
    if summaries is None:
        summaries = summarize(results, group_by=group_by)
    os.makedirs(out_dir, exist_ok=True)
    return {
        "results": write_results_csv(
            results, os.path.join(out_dir, "results.csv")
        ),
        "summary": write_summary_csv(
            summaries, os.path.join(out_dir, "summary.csv")
        ),
        "json": write_sweep_json(
            results,
            summaries,
            os.path.join(out_dir, "sweep.json"),
            name=name,
            group_by=group_by,
        ),
        "cells": write_cells_jsonl(
            results, os.path.join(out_dir, "cells.jsonl")
        ),
    }
