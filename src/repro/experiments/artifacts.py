"""Durable sweep artifacts: the cell store, resume, and merging.

Orchestration identity is the *content key*
(:meth:`~repro.experiments.spec.ScenarioSpec.content_key`): a hash of
the frozen spec's canonical JSON, identical in every process that
touches the same scenario.  Three mechanisms build on it:

``cells.jsonl`` (the :class:`CellStore`)
    An append-only record store inside every artifact directory.  The
    runner appends one JSON line per *completed* cell, atomically, so a
    killed sweep leaves a loadable prefix behind — at most the
    in-flight cells are lost.  Loading tolerates a truncated final
    line (the kill may land mid-write) but refuses corruption anywhere
    else.  Duplicate keys resolve last-wins, which is what lets
    ``--retry-errors`` append a corrected record over an error row.

Resume
    :class:`~repro.experiments.runner.SweepRunner` loads a prior
    store, reuses every cell of the current grid whose key it finds,
    and runs only the rest.

:func:`merge_artifacts`
    Joins shard (or partial-run) stores on content keys, refusing
    *conflicting* duplicates (same key, different payload) while
    deduplicating identical overlap, and recomputes every summary from
    the raw rows — never by averaging shard averages.

Because probes are deterministic functions of the frozen spec, a grid
run in N shards and merged, or killed and resumed, reproduces the
byte-identical ``results.csv`` / ``summary.csv`` / ``sweep.json`` of a
single serial run; ``tests/experiments/`` pins this equivalence down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .aggregate import summarize, write_artifacts
from .runner import ScenarioResult

#: The append-only per-cell record file inside an artifact directory.
CELLS_FILENAME = "cells.jsonl"


class CellStore:
    """The append-only ``cells.jsonl`` record store of one artifact dir.

    Appends are single ``write()`` calls of one newline-terminated JSON
    document followed by an fsync, so concurrent completions never
    interleave records and a kill truncates at most the final line.
    """

    def __init__(self, directory: str) -> None:
        """Bind the store to ``directory`` (not created until needed)."""
        self.directory = directory
        self.path = os.path.join(directory, CELLS_FILENAME)

    def exists(self) -> bool:
        """Whether the record file is present on disk."""
        return os.path.exists(self.path)

    def ensure(self) -> None:
        """Create the directory and an empty record file if missing."""
        os.makedirs(self.directory, exist_ok=True)
        if not self.exists():
            open(self.path, "a").close()

    def append(self, result: ScenarioResult) -> None:
        """Durably append one completed cell's record.

        A prior kill may have left a torn final line.  Writing straight
        after it would glue the new record onto the partial one,
        turning a tolerated end-of-file truncation into fatal mid-file
        corruption.  So the torn tail (if any) is truncated back to the
        last newline first — its cell simply re-runs, exactly as it
        would on load.
        """
        self.ensure()
        with open(self.path, "rb+") as tail:
            tail.seek(0, os.SEEK_END)
            size = tail.tell()
            if size:
                tail.seek(size - 1)
                if tail.read(1) != b"\n":
                    # Torn tail from a killed append: drop the fragment
                    # (its cell re-runs) so the store stays line-clean.
                    tail.seek(0)
                    keep = tail.read().rfind(b"\n") + 1
                    tail.truncate(keep)
        line = (
            json.dumps(
                result.to_record(), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        )
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Dict[str, ScenarioResult]:
        """All stored cells, keyed by content key, in append order.

        A missing file is an empty store.  A final line that does not
        parse is the footprint of a killed append and is dropped; a
        bad line anywhere else means corruption and raises.  Duplicate
        keys resolve last-wins (a retried cell supersedes its error
        row).
        """
        if not self.exists():
            return {}
        cells: Dict[str, ScenarioResult] = {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    break  # truncated in-flight append; resume re-runs it
                raise ExperimentError(
                    f"{self.path}:{number}: corrupt cell record"
                ) from None
            result = ScenarioResult.from_record(record)
            key = result.spec.content_key()
            cells.pop(key, None)  # last-wins, preserving append order
            cells[key] = result
        return cells


def canonical_results(
    results,
) -> List[ScenarioResult]:
    """Results in canonical artifact order: sorted by content key.

    Grid order is a property of one process's iteration; content-key
    order is a property of the grid itself, so it is what serial,
    sharded, and resumed runs can all agree on byte-for-byte.
    """
    return sorted(results, key=lambda result: result.spec.content_key())


@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_artifacts` combined and where it wrote it."""

    #: Merged cells in canonical (content-key) order.
    results: Tuple[ScenarioResult, ...]
    #: Per-cell summaries, as written to the merged summary.csv.
    summaries: Tuple
    #: Artifact kind -> written path (same shape as write_artifacts).
    paths: Mapping[str, str]
    #: Resolved sweep name (explicit, or recovered from the inputs).
    name: str
    #: Resolved aggregation key (explicit, or recovered from the inputs).
    group_by: Tuple[str, ...]
    #: Number of input directories merged.
    sources: int
    #: Duplicate cells that were identical across inputs and deduped.
    overlaps: int


def _artifact_metadata(directory: str) -> Dict[str, object]:
    """Recover ``name``/``group_by`` from a dir's sweep.json, if any."""
    path = os.path.join(directory, "sweep.json")
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    metadata: Dict[str, object] = {}
    if isinstance(document.get("name"), str):
        metadata["name"] = document["name"]
    group_by = document.get("group_by")
    if isinstance(group_by, list) and all(
        isinstance(field, str) for field in group_by
    ):
        metadata["group_by"] = tuple(group_by)
    return metadata


def merge_artifacts(
    in_dirs: Sequence[str],
    out_dir: str,
    name: Optional[str] = None,
    group_by: Optional[Sequence[str]] = None,
) -> MergeReport:
    """Merge shard (or partial-run) artifact directories into one.

    Cells join on their content key.  The same key appearing in
    several inputs is fine when the payloads are identical (shards may
    overlap; a resumed store repeats its prefix) and fatal when they
    differ — conflicting results mean the inputs did not come from the
    same grid definition, and averaging them would fabricate data.
    Summaries are recomputed from the merged raw rows, never by
    combining per-shard aggregates.

    ``name`` and ``group_by`` default to what the input directories'
    own ``sweep.json`` recorded (first input that has them), so merging
    shards of any grid — the stock grid's probe-keyed one included —
    reproduces the serial run's artifacts without repeating flags.
    """
    if not in_dirs:
        raise ExperimentError("nothing to merge: no artifact directories")
    for directory in in_dirs:
        if name is not None and group_by is not None:
            break
        metadata = _artifact_metadata(directory)
        if name is None and "name" in metadata:
            name = metadata["name"]
        if group_by is None and "group_by" in metadata:
            group_by = metadata["group_by"]
    if name is None:
        name = "merged"
    if group_by is None:
        group_by = ("topology", "size", "traffic")
    merged: Dict[str, ScenarioResult] = {}
    origin: Dict[str, str] = {}
    overlaps = 0
    for directory in in_dirs:
        for key, result in _load_store(directory).items():
            if key in merged:
                if result.comparable() != merged[key].comparable():
                    raise ExperimentError(
                        f"conflicting results for cell {key} "
                        f"({result.scenario_id}) in {origin[key]!r} "
                        f"and {directory!r}"
                    )
                overlaps += 1
            else:
                merged[key] = result
                origin[key] = directory
    results = canonical_results(merged.values())
    summaries = summarize(results, group_by=group_by)
    paths = write_artifacts(
        results, summaries, out_dir, name=name, group_by=group_by
    )
    return MergeReport(
        results=tuple(results),
        summaries=tuple(summaries),
        paths=paths,
        name=name,
        group_by=tuple(group_by),
        sources=len(in_dirs),
        overlaps=overlaps,
    )


def load_artifact_results(directory: str) -> List[ScenarioResult]:
    """The cells of one artifact directory, in canonical order."""
    return canonical_results(_load_store(directory).values())


def _load_store(directory: str) -> Dict[str, ScenarioResult]:
    store = CellStore(directory)
    if not store.exists():
        raise ExperimentError(
            f"no {CELLS_FILENAME} in {directory!r}; "
            f"not a sweep artifact directory"
        )
    return store.load()
