"""Declarative scenario specifications and grid expansion.

A :class:`ScenarioSpec` is one fully determined experiment: a topology
family with its size/seed/cost-distribution knobs, a traffic model, a
*probe* (which measurement to take), and optional manipulation
injection.  Specs are frozen dataclasses of primitives, so they pickle
cleanly into :mod:`multiprocessing` workers and round-trip through
JSON.

A sweep is a *grid*: one base spec plus named axes, expanded by
:func:`expand_grid` into the cartesian product of concrete scenarios.
The paper's headline numbers (overpayment under VCG, detection rates,
convergence behaviour) are claims about distributions over such grids,
not about any single topology.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..faithful import DEVIATION_CATALOGUE
from ..routing.graph import ASGraph
from ..workloads import (
    COST_DISTRIBUTIONS,
    MASS_DISTRIBUTIONS,
    VOLUME_DISTRIBUTIONS,
    complete_graph,
    figure1_graph,
    gravity,
    hotspot,
    random_biconnected_graph,
    random_pairs,
    ring_graph,
    uniform_all_pairs,
    wheel_graph,
)

#: Topology families a spec may name.
TOPOLOGY_FAMILIES = ("figure1", "ring", "wheel", "complete", "random")
#: Traffic models a spec may name.
TRAFFIC_MODELS = ("uniform", "random-pairs", "hotspot", "gravity")
#: Probes: which measurement one scenario takes.
PROBES = (
    "payments",
    "convergence",
    "detection",
    "faithfulness",
    "churn",
    "settlement",
)

#: Minimum node count per family (mirrors the generators' own checks).
_MIN_SIZE = {"figure1": 0, "ring": 3, "wheel": 4, "complete": 3, "random": 3}

#: Default values of the churn-probe schema extension; fields at these
#: values are omitted from the canonical serialisation (key stability).
_CHURN_DEFAULTS = {
    "churn_epochs": 2,
    "churn_events": 1,
    "churn_membership": False,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete, reproducible experiment scenario.

    Every field is a primitive; two equal specs describe bit-identical
    experiments (all randomness flows through ``seed``).
    """

    # --- topology ---------------------------------------------------
    topology: str = "random"
    size: int = 8
    seed: int = 0
    extra_edge_prob: float = 0.25
    cost_dist: str = "uniform"
    cost_low: float = 1.0
    cost_high: float = 10.0
    cost_param: float = 2.5

    # --- traffic ----------------------------------------------------
    traffic: str = "uniform"
    volume: float = 1.0
    volume_high: float = 5.0
    flow_count: int = 16
    volume_dist: str = "uniform"
    volume_param: float = 1.5
    total_volume: float = 100.0
    mass_dist: str = "uniform"
    mass_param: float = 1.5

    # --- probe ------------------------------------------------------
    probe: str = "payments"
    payment_rule: str = "vcg"
    #: Detection probe: catalogue deviation installed on one node.
    deviation: Optional[str] = None
    #: Index into the repr-sorted node list choosing the deviant.
    deviant_index: int = 0
    #: Convergence probe: per-link delays drawn from U(1, 1+spread).
    link_delay_spread: float = 0.0
    #: Faithfulness probe: catalogue subset to verify (None = a small
    #: default pair; the full catalogue is far too slow per scenario).
    faithfulness_deviations: Optional[Tuple[str, ...]] = None
    #: Churn probe: reconvergence epochs and seeded events per epoch.
    #: These fields are omitted from the canonical serialisation at
    #: their defaults, so pre-churn content keys are unchanged.
    churn_epochs: int = 2
    churn_events: int = 1
    #: Include membership events (leave/join) in the drawn schedules.
    churn_membership: bool = False

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ExperimentError` on the first bad field."""
        self._check_field_types()
        if self.topology not in TOPOLOGY_FAMILIES:
            raise ExperimentError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGY_FAMILIES}"
            )
        if self.topology != "figure1" and self.size < _MIN_SIZE[self.topology]:
            raise ExperimentError(
                f"{self.topology} topology needs at least "
                f"{_MIN_SIZE[self.topology]} nodes, got {self.size}"
            )
        if self.traffic not in TRAFFIC_MODELS:
            raise ExperimentError(
                f"unknown traffic model {self.traffic!r}; "
                f"expected one of {TRAFFIC_MODELS}"
            )
        if self.probe not in PROBES:
            raise ExperimentError(
                f"unknown probe {self.probe!r}; expected one of {PROBES}"
            )
        if self.cost_dist not in COST_DISTRIBUTIONS:
            raise ExperimentError(f"unknown cost_dist {self.cost_dist!r}")
        if self.volume_dist not in VOLUME_DISTRIBUTIONS:
            raise ExperimentError(f"unknown volume_dist {self.volume_dist!r}")
        if self.mass_dist not in MASS_DISTRIBUTIONS:
            raise ExperimentError(f"unknown mass_dist {self.mass_dist!r}")
        if self.payment_rule not in ("vcg", "declared-cost"):
            raise ExperimentError(
                f"unknown payment_rule {self.payment_rule!r}"
            )
        if self.probe == "detection":
            if self.deviation is None:
                raise ExperimentError(
                    "detection probe needs a 'deviation' from the catalogue"
                )
            if self.deviation not in DEVIATION_CATALOGUE:
                raise ExperimentError(
                    f"unknown deviation {self.deviation!r}; "
                    f"see DEVIATION_CATALOGUE"
                )
        names = (
            self.faithfulness_deviations
            if self.faithfulness_deviations is not None
            else ()
        )
        for name in names:
            if name not in DEVIATION_CATALOGUE:
                raise ExperimentError(f"unknown deviation {name!r}")
        if self.link_delay_spread < 0:
            raise ExperimentError("link_delay_spread must be non-negative")
        if self.deviant_index < 0:
            raise ExperimentError("deviant_index must be non-negative")
        if self.churn_epochs < 1:
            raise ExperimentError("churn_epochs must be positive")
        if self.churn_events < 1:
            raise ExperimentError("churn_events must be positive")
        return self

    def _check_field_types(self) -> None:
        """JSON documents feed these fields; reject wrong types with an
        :class:`ExperimentError` instead of a downstream TypeError."""
        for name in (
            "size",
            "seed",
            "flow_count",
            "deviant_index",
            "churn_epochs",
            "churn_events",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ExperimentError(
                    f"{name} must be an integer, got {value!r}"
                )
        for name in (
            "extra_edge_prob",
            "cost_low",
            "cost_high",
            "cost_param",
            "volume",
            "volume_high",
            "volume_param",
            "total_volume",
            "mass_param",
            "link_delay_spread",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExperimentError(
                    f"{name} must be a number, got {value!r}"
                )
        for name in (
            "topology",
            "traffic",
            "probe",
            "cost_dist",
            "volume_dist",
            "mass_dist",
            "payment_rule",
        ):
            value = getattr(self, name)
            if not isinstance(value, str):
                raise ExperimentError(
                    f"{name} must be a string, got {value!r}"
                )
        if self.deviation is not None and not isinstance(self.deviation, str):
            raise ExperimentError(
                f"deviation must be a string, got {self.deviation!r}"
            )
        if not isinstance(self.churn_membership, bool):
            raise ExperimentError(
                f"churn_membership must be a boolean, "
                f"got {self.churn_membership!r}"
            )
        if self.faithfulness_deviations is not None and (
            not isinstance(self.faithfulness_deviations, tuple)
            or not all(
                isinstance(n, str) for n in self.faithfulness_deviations
            )
        ):
            raise ExperimentError(
                "faithfulness_deviations must be a sequence of strings"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def canonical_json(self) -> str:
        """The spec as canonical JSON: sorted keys, compact separators.

        This is the *identity* serialisation: two specs are the same
        scenario iff their canonical JSON is equal, regardless of how
        a sweep document ordered its keys.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_key(self) -> str:
        """A stable content hash naming this scenario across processes.

        The key is a SHA-256 prefix of :meth:`canonical_json`, so it is
        invariant under JSON key reordering and identical in every
        shard, resume, and merge that touches the same frozen spec.
        Artifact rows carry it as ``cell_key``; resumable runs and
        :func:`~repro.experiments.artifacts.merge_artifacts` use it to
        recognise already-computed cells.  The digest is memoized on
        the (frozen) instance: rows, stores, and canonical sorts all
        re-ask for it.
        """
        key = self.__dict__.get("_content_key")
        if key is None:
            digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
            key = digest.hexdigest()[:16]
            object.__setattr__(self, "_content_key", key)
        return key

    def scenario_id(self) -> str:
        """A compact, unique-within-a-grid label for artifacts."""
        parts = [self.topology]
        if self.topology != "figure1":
            parts.append(str(self.size))
        parts.extend([f"s{self.seed}", self.traffic, self.probe])
        if self.cost_dist != "uniform":
            parts.append(self.cost_dist)
        if self.volume_dist != "uniform":
            parts.append(self.volume_dist)
        if self.deviation is not None:
            parts.append(f"{self.deviation}@{self.deviant_index}")
        if self.probe == "churn":
            parts.append(f"x{self.churn_epochs}.{self.churn_events}")
            if self.churn_membership:
                parts.append("membership")
        return ":".join(parts)

    def build_graph(self) -> ASGraph:
        """The scenario's topology (deterministic in ``seed``)."""
        if self.topology == "figure1":
            return figure1_graph()
        rng = random.Random(self.seed)
        cost_range = (self.cost_low, self.cost_high)
        if self.topology == "ring":
            graph = ring_graph(self.size, rng, cost_range=cost_range)
        elif self.topology == "wheel":
            graph = wheel_graph(self.size, rng, cost_range=cost_range)
        elif self.topology == "complete":
            graph = complete_graph(self.size, rng, cost_range=cost_range)
        else:
            return random_biconnected_graph(
                self.size,
                rng,
                extra_edge_prob=self.extra_edge_prob,
                cost_range=cost_range,
                cost_dist=self.cost_dist,
                cost_param=self.cost_param,
            )
        if self.cost_dist != "uniform":
            # Named families draw uniform costs internally; re-draw
            # from the requested distribution with a derived seed so
            # the edge structure is untouched.
            from ..workloads import draw_costs

            costs = draw_costs(
                list(graph.nodes),
                random.Random(self.seed + 0x5EED),
                cost_range,
                cost_dist=self.cost_dist,
                cost_param=self.cost_param,
            )
            graph = graph.with_costs(costs)
        return graph

    def build_traffic(self, graph: ASGraph) -> Dict[Tuple[Any, Any], float]:
        """The scenario's traffic matrix on ``graph``."""
        if self.traffic == "uniform":
            return uniform_all_pairs(graph, volume=self.volume)
        rng = random.Random(self.seed + 1)  # independent of the topology draw
        if self.traffic == "random-pairs":
            return random_pairs(
                graph,
                rng,
                self.flow_count,
                volume_range=(self.volume, self.volume_high),
                volume_dist=self.volume_dist,
                volume_param=self.volume_param,
            )
        if self.traffic == "hotspot":
            destination = sorted(graph.nodes, key=repr)[
                rng.randrange(len(graph.nodes))
            ]
            return hotspot(graph, destination, volume=self.volume)
        return gravity(
            graph,
            rng,
            total_volume=self.total_volume,
            mass_dist=self.mass_dist,
            mass_param=self.mass_param,
        )

    def link_delays(self):
        """Per-link delay model for protocol probes.

        Zero spread keeps the synchronous default (1.0 everywhere);
        otherwise each link's delay is drawn from ``U(1, 1+spread)``
        with a seed-derived generator, giving reproducible link-delay
        heterogeneity.
        """
        if self.link_delay_spread == 0.0:
            return 1.0
        rng = random.Random(self.seed + 2)
        spread = self.link_delay_spread

        def delay(a, b, _rng=rng, _spread=spread):
            # Hash-free: one fresh draw per link, in topology order.
            return _rng.uniform(1.0, 1.0 + _spread)

        return delay

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (tuples become lists).

        Churn fields are omitted at their defaults: the serialisation
        (and hence every content key) of a pre-churn spec is unchanged
        by the schema extension, so stored artifacts keep resuming and
        merging across versions.
        """
        raw = asdict(self)
        if raw["faithfulness_deviations"] is not None:
            raw["faithfulness_deviations"] = list(
                raw["faithfulness_deviations"]
            )
        for name in ("churn_epochs", "churn_events", "churn_membership"):
            if raw[name] == _CHURN_DEFAULTS[name]:
                del raw[name]
        return raw

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from a JSON-style mapping."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ExperimentError(f"unknown scenario fields: {unknown}")
        values = dict(document)
        if values.get("faithfulness_deviations") is not None:
            values["faithfulness_deviations"] = tuple(
                values["faithfulness_deviations"]
            )
        return cls(**values).validate()


def validate_group_by(group_by: Sequence[str]) -> Tuple[str, ...]:
    """Check cell-key fields against the spec schema; returns a tuple.

    Used both when a sweep document is parsed and before a sweep runs,
    so a ``--group-by`` typo fails *before* any scenario executes.
    """
    names = tuple(group_by)
    spec_fields = {f.name for f in fields(ScenarioSpec)}
    bad = sorted(set(names) - spec_fields)
    if bad:
        raise ExperimentError(f"unknown group_by fields: {bad}")
    return names


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of scenarios plus its aggregation key."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    group_by: Tuple[str, ...] = ("topology", "size", "traffic")

    def __post_init__(self) -> None:
        validate_group_by(self.group_by)
        if not self.scenarios:
            raise ExperimentError("a sweep needs at least one scenario")


def expand_grid(
    base: Mapping[str, Any],
    axes: Mapping[str, Sequence[Any]],
) -> List[ScenarioSpec]:
    """The cartesian product of ``axes`` over a ``base`` template.

    ``base`` holds fixed :class:`ScenarioSpec` fields; each axis maps a
    field name to the values it sweeps.  Axes expand in their given
    order (first axis varies slowest), so the scenario list — and hence
    every artifact row — is deterministic.
    """
    spec_fields = {f.name for f in fields(ScenarioSpec)}
    bad = sorted((set(base) | set(axes)) - spec_fields)
    if bad:
        raise ExperimentError(f"unknown grid fields: {bad}")
    overlap = sorted(set(base) & set(axes))
    if overlap:
        raise ExperimentError(
            f"fields both fixed and swept: {overlap}"
        )
    for name, values in axes.items():
        if not values:
            raise ExperimentError(f"axis {name!r} has no values")
    template = ScenarioSpec(**dict(base))
    names = list(axes)
    scenarios = []
    for combo in itertools.product(*(axes[name] for name in names)):
        scenarios.append(
            replace(template, **dict(zip(names, combo, strict=True))).validate()
        )
    return scenarios


def shard_grid(
    specs: Sequence[ScenarioSpec],
    shard_index: int,
    shard_count: int,
) -> Tuple[ScenarioSpec, ...]:
    """Deterministically slice a grid into one of ``shard_count`` shards.

    Sharding is round-robin (``specs[shard_index::shard_count]``), so
    the axes that vary fastest — seeds, usually — spread evenly across
    shards and a mixed-cost grid balances without any cost model.  The
    shards of one grid are disjoint, cover it, and preserve grid order
    within each shard; ``shard_count`` larger than the grid simply
    yields empty shards.  Identity, not position, links the shards back
    together: every cell carries its :meth:`ScenarioSpec.content_key`,
    which is what :func:`~repro.experiments.artifacts.merge_artifacts`
    joins on.
    """
    if shard_count < 1:
        raise ExperimentError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ExperimentError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return tuple(specs[shard_index::shard_count])


def parse_sweep(document: Mapping[str, Any]) -> SweepSpec:
    """Parse a JSON sweep document.

    Format::

        {
          "name": "overpayment-vs-density",
          "base": {"probe": "payments", "cost_dist": "pareto"},
          "axes": {
            "topology": ["random", "ring"],
            "traffic": ["uniform", "gravity"],
            "size": [8, 16],
            "seed": [0, 1, 2, 3, 4]
          },
          "group_by": ["topology", "size", "traffic"]
        }
    """
    allowed = {"name", "base", "axes", "group_by"}
    unknown = sorted(set(document) - allowed)
    if unknown:
        raise ExperimentError(f"unknown sweep fields: {unknown}")
    if "axes" not in document or not document["axes"]:
        raise ExperimentError("a sweep document needs non-empty 'axes'")
    base = dict(document.get("base", {}))
    if base.get("faithfulness_deviations") is not None:
        base["faithfulness_deviations"] = tuple(
            base["faithfulness_deviations"]
        )
    scenarios = expand_grid(base, document["axes"])
    kwargs: Dict[str, Any] = {}
    if "group_by" in document:
        kwargs["group_by"] = tuple(document["group_by"])
    return SweepSpec(
        name=str(document.get("name", "sweep")),
        scenarios=tuple(scenarios),
        **kwargs,
    )


def default_sweep(
    seeds: int = 7,
    protocol_seeds: int = 2,
    protocol_sizes: Sequence[int] = (16, 64),
    checked_seeds: int = 1,
    checked_sizes: Sequence[int] = (16, 64),
    churn_seeds: int = 2,
    churn_sizes: Sequence[int] = (12, 16),
    settlement_seeds: int = 1,
    settlement_sizes: Sequence[int] = (16, 64),
) -> SweepSpec:
    """The stock grid behind ``python -m repro sweep``.

    Three blocks.  The *payments* block is two topology families x two
    traffic models x two sizes x ``seeds`` seeds on the cheap payments
    probe (56 scenarios at the default), summarising VCG overpayment.
    The *protocol* block runs the convergence probe on random
    biconnected graphs at ``protocol_sizes`` — 64-node protocol
    scenarios run in seconds on the incremental engine, so the stock
    grid now exercises them — with ``protocol_seeds`` seeds each
    (``protocol_seeds=0`` drops the block, restoring the payments-only
    grid).  The *checked* block exercises the fully mirrored faithful
    network, which the shared replay kernel brought within reach of the
    protocol sizes: detection cells (one catalogued construction
    manipulation per cell, light random-pairs traffic) at every
    ``checked_sizes`` rung and faithfulness cells at the smallest rung
    only (the Proposition-1 verifier runs several complete mechanism
    runs per cell); ``checked_seeds=0`` drops the block.  The *churn*
    block runs the dynamic-topology probe (seeded churn schedules,
    epoch-equivalence-verified reconvergence, traffic between epochs)
    on random biconnected graphs at ``churn_sizes`` with
    ``churn_seeds`` seeds — half the cells membership-free, half with
    leave/join events; ``churn_seeds=0`` drops the block.  The
    *settlement* block runs the batched-bank probe (synthesized honest
    execution reports, columnar settle, epoch netting, forced
    settlement dry-run) at ``settlement_sizes`` with
    ``settlement_seeds`` seeds; ``settlement_seeds=0`` drops the
    block.  Blocks only ever *append* scenarios, so the content keys
    of existing cells are unchanged by the knobs; cells are keyed by
    probe as well as topology/size/traffic so no two blocks share a
    summary cell.
    """
    if seeds < 1:
        raise ExperimentError("seeds must be positive")
    if protocol_seeds < 0:
        raise ExperimentError("protocol_seeds must be non-negative")
    if checked_seeds < 0:
        raise ExperimentError("checked_seeds must be non-negative")
    if churn_seeds < 0:
        raise ExperimentError("churn_seeds must be non-negative")
    if settlement_seeds < 0:
        raise ExperimentError("settlement_seeds must be non-negative")
    scenarios = expand_grid(
        base={"probe": "payments"},
        axes={
            "topology": ["random", "ring"],
            "traffic": ["uniform", "gravity"],
            "size": [8, 12],
            "seed": list(range(seeds)),
        },
    )
    if protocol_seeds and protocol_sizes:
        scenarios.extend(
            expand_grid(
                base={"probe": "convergence", "topology": "random"},
                axes={
                    "size": list(protocol_sizes),
                    "seed": list(range(protocol_seeds)),
                },
            )
        )
    if checked_seeds and checked_sizes:
        scenarios.extend(
            expand_grid(
                base={
                    "probe": "detection",
                    "topology": "random",
                    "traffic": "random-pairs",
                    "flow_count": 8,
                    "deviation": "false-route-announce",
                },
                axes={
                    "size": list(checked_sizes),
                    "seed": list(range(checked_seeds)),
                },
            )
        )
        scenarios.extend(
            expand_grid(
                base={
                    "probe": "faithfulness",
                    "topology": "random",
                    "traffic": "random-pairs",
                    "flow_count": 8,
                },
                axes={
                    "size": [min(checked_sizes)],
                    "seed": list(range(checked_seeds)),
                },
            )
        )
    if churn_seeds and churn_sizes:
        for membership in (False, True):
            scenarios.extend(
                expand_grid(
                    base={
                        "probe": "churn",
                        "topology": "random",
                        "churn_epochs": 3,
                        "churn_events": 2,
                        "churn_membership": membership,
                    },
                    axes={
                        "size": list(churn_sizes),
                        "seed": list(range(churn_seeds)),
                    },
                )
            )
    if settlement_seeds and settlement_sizes:
        scenarios.extend(
            expand_grid(
                base={"probe": "settlement", "topology": "random"},
                axes={
                    "size": list(settlement_sizes),
                    "seed": list(range(settlement_seeds)),
                },
            )
        )
    return SweepSpec(
        name="default",
        scenarios=tuple(scenarios),
        group_by=("probe", "topology", "size", "traffic"),
    )
