"""Scenario sweep subsystem: declarative experiments at scale.

The paper's headline results are claims about *distributions over
scenarios*; this package turns one spec template into hundreds of
concrete scenarios, executes them (serially or across a worker pool),
and reduces the results to per-cell summary statistics plus CSV/JSON
artifacts.

The orchestration layer (``spec.shard_grid`` + ``artifacts``) scales
this across machines and failures: every cell is named by a content
key (hash of its frozen spec), runs append completed cells to a
durable ``cells.jsonl`` store, ``SweepRunner(resume_dir=...)`` skips
cells a prior run already recorded, and ``merge_artifacts`` joins
shard stores into one artifact set.  Artifacts are byte-deterministic,
so a sharded+merged or killed+resumed sweep is indistinguishable from
a single serial run (see docs/architecture.md § 8).

Typical use::

    from repro.experiments import (
        SweepRunner, default_sweep, shard_grid, summarize,
        write_artifacts, merge_artifacts,
    )

    sweep = default_sweep()
    shard = shard_grid(sweep.scenarios, 0, 4)          # this machine's quarter
    runner = SweepRunner(shard, workers=4, allow_empty=True)
    results = runner.run(store_dir="out/shard0")       # resumable store
    summaries = summarize(results, group_by=sweep.group_by)
    write_artifacts(results, summaries, "out/shard0", name=sweep.name)
    # later, on one machine:
    merge_artifacts(["out/shard0", ...], "out/merged", name=sweep.name)
"""

from .aggregate import (
    CellSummary,
    SummaryStats,
    summarize,
    write_artifacts,
    write_cells_jsonl,
    write_results_csv,
    write_summary_csv,
    write_sweep_json,
)
from .artifacts import (
    CELLS_FILENAME,
    CellStore,
    MergeReport,
    canonical_results,
    load_artifact_results,
    merge_artifacts,
)
from .runner import (
    ScenarioResult,
    SweepRunner,
    run_scenario,
    run_scenario_traced,
    run_sweep,
)
from .spec import (
    PROBES,
    TOPOLOGY_FAMILIES,
    TRAFFIC_MODELS,
    ScenarioSpec,
    SweepSpec,
    default_sweep,
    expand_grid,
    parse_sweep,
    shard_grid,
    validate_group_by,
)

__all__ = [
    "CELLS_FILENAME",
    "CellStore",
    "CellSummary",
    "MergeReport",
    "PROBES",
    "ScenarioResult",
    "ScenarioSpec",
    "SummaryStats",
    "SweepRunner",
    "SweepSpec",
    "TOPOLOGY_FAMILIES",
    "TRAFFIC_MODELS",
    "canonical_results",
    "default_sweep",
    "expand_grid",
    "load_artifact_results",
    "merge_artifacts",
    "parse_sweep",
    "run_scenario",
    "run_scenario_traced",
    "run_sweep",
    "shard_grid",
    "summarize",
    "validate_group_by",
    "write_artifacts",
    "write_cells_jsonl",
    "write_results_csv",
    "write_summary_csv",
    "write_sweep_json",
]
