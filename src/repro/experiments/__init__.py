"""Scenario sweep subsystem: declarative experiments at scale.

The paper's headline results are claims about *distributions over
scenarios*; this package turns one spec template into hundreds of
concrete scenarios, executes them (serially or across a worker pool),
and reduces the results to per-cell summary statistics plus CSV/JSON
artifacts.  Every future scaling PR (sharding, async backends, bigger
topologies) plugs into this layer.

Typical use::

    from repro.experiments import (
        SweepRunner, default_sweep, summarize, write_artifacts,
    )

    sweep = default_sweep()
    results = SweepRunner(sweep, workers=4).run()
    summaries = summarize(results, group_by=sweep.group_by)
    write_artifacts(results, summaries, "out/", name=sweep.name)
"""

from .aggregate import (
    CellSummary,
    SummaryStats,
    summarize,
    write_artifacts,
    write_results_csv,
    write_summary_csv,
    write_sweep_json,
)
from .runner import ScenarioResult, SweepRunner, run_scenario, run_sweep
from .spec import (
    PROBES,
    TOPOLOGY_FAMILIES,
    TRAFFIC_MODELS,
    ScenarioSpec,
    SweepSpec,
    default_sweep,
    expand_grid,
    parse_sweep,
    validate_group_by,
)

__all__ = [
    "CellSummary",
    "PROBES",
    "ScenarioResult",
    "ScenarioSpec",
    "SummaryStats",
    "SweepRunner",
    "SweepSpec",
    "TOPOLOGY_FAMILIES",
    "TRAFFIC_MODELS",
    "default_sweep",
    "expand_grid",
    "parse_sweep",
    "run_scenario",
    "run_sweep",
    "summarize",
    "validate_group_by",
    "write_artifacts",
    "write_results_csv",
    "write_summary_csv",
    "write_sweep_json",
]
