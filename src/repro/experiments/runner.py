"""Scenario execution: one worker function, serial or pooled.

:func:`run_scenario` is the single entry point that turns one
:class:`~repro.experiments.spec.ScenarioSpec` into a typed
:class:`ScenarioResult`.  It is a module-level function of a picklable
argument, so :class:`SweepRunner` can ship it unchanged into a
:mod:`multiprocessing` pool; each worker process keeps its own
:func:`~repro.routing.engine.engine_for` cache, so scenarios sharing a
graph within a worker reuse one memoized routing engine.

Probes
------
``payments``
    Route the traffic matrix through the centralized VCG oracle and
    record totals, the overpayment ratio (VCG paid / true transit cost
    incurred), and the LCP routing cost.
``convergence``
    Run the plain FPSS protocol to quiescence (optionally under
    heterogeneous link delays), verify the fixed point against the
    oracle, and record event/message counts.
``detection``
    Install one catalogued manipulation on one node, run the faithful
    protocol against its obedient baseline, and record the deviator's
    gain, whether the deviation was detected, and restarts.
``faithfulness``
    Run the Proposition-1 verifier over the scenario's own type
    profile and a (small) catalogue subset.  Orders of magnitude more
    expensive than the other probes — meant for small graphs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.experiments import routing_distributed_mechanism
from ..errors import ExperimentError, ReproError
from ..faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from ..mechanism.faithfulness import proposition1_verdict
from ..mechanism.types import TypeProfile
from ..routing.convergence import measure_convergence
from ..routing.vcg_payments import economics_under_traffic
from .spec import ScenarioSpec, SweepSpec

#: Cheap default catalogue subset for the faithfulness probe.
_DEFAULT_FAITHFULNESS_DEVIATIONS = ("cost-lie", "payment-underreport")


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario produced, flattened for aggregation."""

    spec: ScenarioSpec
    scenario_id: str
    nodes: int
    edges: int
    flows: int
    total_volume: float
    wall_time: float
    #: Numeric probe outputs; keys depend on the probe (see metrics()).
    values: Mapping[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the scenario ran to completion."""
        return self.error is None

    def metrics(self) -> Dict[str, float]:
        """All numeric metrics, including the structural ones."""
        row = {
            "nodes": float(self.nodes),
            "edges": float(self.edges),
            "flows": float(self.flows),
            # Not "total_volume": that name is a gravity *input* knob on
            # the spec, and artifact rows carry both side by side.
            "traffic_volume": self.total_volume,
            "wall_time": self.wall_time,
        }
        row.update(self.values)
        return row

    def to_row(self) -> Dict[str, Any]:
        """One flat artifact row: spec fields + metrics + status."""
        row: Dict[str, Any] = {"scenario_id": self.scenario_id}
        row.update(self.spec.to_dict())
        row.pop("faithfulness_deviations", None)
        row.update(self.metrics())
        row["error"] = self.error or ""
        return row


def _payments_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    economics = economics_under_traffic(
        graph, graph, traffic, payment_rule=spec.payment_rule
    )
    total_paid = sum(e.paid for e in economics.values())
    true_cost = sum(e.true_transit_cost for e in economics.values())
    return {
        "total_payment": total_paid,
        "true_transit_cost": true_cost,
        # VCG individual rationality makes this >= 1 on every scenario;
        # its distribution over the grid is the paper's overpayment story.
        "overpayment_ratio": total_paid / true_cost if true_cost else 1.0,
    }


def _convergence_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    stats = measure_convergence(graph, link_delays=spec.link_delays())
    return {
        "phase1_events": float(stats.phase1_events),
        "phase2_events": float(stats.phase2_events),
        "convergence_events": float(stats.total_events),
        "messages": float(stats.total_messages),
        "computations": float(stats.total_computations),
    }


def _detection_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    deviation = DEVIATION_CATALOGUE[spec.deviation]
    nodes = sorted(graph.nodes, key=repr)
    deviant = nodes[spec.deviant_index % len(nodes)]
    baseline = FaithfulFPSSProtocol(graph, traffic).run()
    deviated = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=faithful_deviant_factory(deviation, deviant),
    ).run()
    gain = deviated.utilities[deviant] - baseline.utilities[deviant]
    return {
        "detected": float(deviated.detection.detected_any),
        "deviator_gain": gain,
        "restarts": float(deviated.detection.restarts),
        "flags": float(len(deviated.detection.all_flags)),
        "progressed": float(deviated.progressed),
    }


def _faithfulness_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    names = spec.faithfulness_deviations or _DEFAULT_FAITHFULNESS_DEVIATIONS
    mechanism = routing_distributed_mechanism(
        graph, traffic, deviations=names, faithful=True
    )
    profiles = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
    verdict = proposition1_verdict(mechanism, profiles)
    return verdict.summary()


_PROBES = {
    "payments": _payments_probe,
    "convergence": _convergence_probe,
    "detection": _detection_probe,
    "faithfulness": _faithfulness_probe,
}


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario and return its typed result.

    Library-level failures (:class:`ReproError`) are captured into the
    result's ``error`` field so one bad cell cannot sink a whole sweep;
    programming errors still propagate.
    """
    spec.validate()
    started = time.perf_counter()
    nodes = edges = flows = 0
    volume = 0.0
    values: Dict[str, float] = {}
    error: Optional[str] = None
    try:
        # Construction stays inside the capture: generator-level
        # failures (e.g. a heavy-tail distribution with a zero anchor)
        # are per-cell data, not grounds to abort the grid.
        graph = spec.build_graph()
        traffic = spec.build_traffic(graph)
        nodes, edges = len(graph.nodes), len(graph.edges)
        flows = sum(1 for v in traffic.values() if v > 0)
        volume = sum(traffic.values())
        values = _PROBES[spec.probe](spec, graph, traffic)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return ScenarioResult(
        spec=spec,
        scenario_id=spec.scenario_id(),
        nodes=nodes,
        edges=edges,
        flows=flows,
        total_volume=volume,
        wall_time=time.perf_counter() - started,
        values=values,
        error=error,
    )


def _run_indexed(item: Tuple[int, ScenarioSpec]) -> Tuple[int, ScenarioResult]:
    index, spec = item
    return index, run_scenario(spec)


class SweepRunner:
    """Execute a list of scenarios, serially or across a worker pool.

    Parameters
    ----------
    scenarios:
        The concrete grid (a :class:`SweepSpec` or a plain sequence).
    workers:
        ``1`` (the default) runs in-process.  Larger values fan out
        over a ``multiprocessing`` pool; results come back in grid
        order regardless of completion order.  ``0`` means "one worker
        per available CPU".
    """

    def __init__(
        self,
        scenarios,
        workers: int = 1,
    ) -> None:
        if isinstance(scenarios, SweepSpec):
            scenarios = scenarios.scenarios
        self.scenarios: Tuple[ScenarioSpec, ...] = tuple(scenarios)
        if not self.scenarios:
            raise ExperimentError("nothing to sweep")
        for spec in self.scenarios:
            spec.validate()
        if workers < 0:
            raise ExperimentError("workers must be non-negative")
        if workers == 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers

    def run(self) -> List[ScenarioResult]:
        """All results, in the same order as ``self.scenarios``."""
        if self.workers == 1:
            return [run_scenario(spec) for spec in self.scenarios]
        return self._run_pooled()

    def _run_pooled(self) -> List[ScenarioResult]:
        # fork shares the imported library with the children for free;
        # platforms without it (Windows, macOS spawn default) fall back
        # to the default start method, which re-imports repro.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods and sys.platform != "win32" else None
        )
        indexed = list(enumerate(self.scenarios))
        results: List[Optional[ScenarioResult]] = [None] * len(indexed)
        with context.Pool(processes=self.workers) as pool:
            for index, result in pool.imap_unordered(
                _run_indexed, indexed, chunksize=1
            ):
                results[index] = result
        return [r for r in results if r is not None]


def run_sweep(
    sweep: SweepSpec, workers: int = 1
) -> List[ScenarioResult]:
    """Convenience wrapper: expand-free execution of a parsed sweep."""
    return SweepRunner(sweep, workers=workers).run()
