"""Scenario execution: one worker function, serial or pooled.

:func:`run_scenario` is the single entry point that turns one
:class:`~repro.experiments.spec.ScenarioSpec` into a typed
:class:`ScenarioResult`.  It is a module-level function of a picklable
argument, so :class:`SweepRunner` can ship it unchanged into a
:mod:`multiprocessing` pool; each worker process keeps its own
:func:`~repro.routing.engine.engine_for` cache, so scenarios sharing a
graph within a worker reuse one memoized routing engine.

Probes
------
``payments``
    Route the traffic matrix through the centralized VCG oracle and
    record totals, the overpayment ratio (VCG paid / true transit cost
    incurred), and the LCP routing cost.
``convergence``
    Run the plain FPSS protocol to quiescence (optionally under
    heterogeneous link delays), verify the fixed point against the
    oracle, and record event/message counts.
``detection``
    Install one catalogued manipulation on one node, run the faithful
    protocol against its obedient baseline, and record the deviator's
    gain, whether the deviation was detected, and restarts.
``faithfulness``
    Run the Proposition-1 verifier over the scenario's own type
    profile and a (small) catalogue subset.  Orders of magnitude more
    expensive than the other probes — meant for small graphs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.experiments import routing_distributed_mechanism
from ..errors import ExperimentError, ReproError
from ..faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    faithful_deviant_factory,
)
from ..mechanism.faithfulness import proposition1_verdict
from ..mechanism.types import TypeProfile
from ..obs.events import BUS
from ..obs.trace import NOOP_SPAN, aggregate_counters, span
from ..routing.convergence import measure_convergence
from ..routing.vcg_payments import economics_under_traffic
from .spec import ScenarioSpec, SweepSpec

#: Cheap default catalogue subset for the faithfulness probe.
_DEFAULT_FAITHFULNESS_DEVIATIONS = ("cost-lie", "payment-underreport")


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario produced, flattened for aggregation."""

    spec: ScenarioSpec
    scenario_id: str
    nodes: int
    edges: int
    flows: int
    total_volume: float
    wall_time: float
    #: Numeric probe outputs; keys depend on the probe (see metrics()).
    values: Mapping[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the scenario ran to completion."""
        return self.error is None

    #: Structural metrics every probe reports, in artifact column order.
    STRUCTURAL_METRICS = ("nodes", "edges", "flows", "traffic_volume")

    def metrics(self) -> Dict[str, float]:
        """All numeric metrics, including the structural ones.

        ``wall_time`` is deliberately *not* a metric: it is the one
        volatile field on a result, and keeping it out of rows and
        summaries is what makes artifacts byte-identical across
        sharded, resumed, and serial runs of the same grid.  Timing
        lives on the result object (and in ``cells.jsonl`` records).
        """
        row = {
            "nodes": float(self.nodes),
            "edges": float(self.edges),
            "flows": float(self.flows),
            # Not "total_volume": that name is a gravity *input* knob on
            # the spec, and artifact rows carry both side by side.
            "traffic_volume": self.total_volume,
        }
        row.update(self.values)
        return row

    def to_row(self) -> Dict[str, Any]:
        """One flat artifact row: key + spec fields + metrics + status."""
        row: Dict[str, Any] = {
            "cell_key": self.spec.content_key(),
            "scenario_id": self.scenario_id,
        }
        row.update(self.spec.to_dict())
        row.pop("faithfulness_deviations", None)
        row.update(self.metrics())
        row["error"] = self.error or ""
        return row

    def to_record(self) -> Dict[str, Any]:
        """A lossless JSON-ready record (one ``cells.jsonl`` line).

        Unlike the flat CSV row, the record keeps the full structured
        spec (so the result is exactly reconstructible) and the
        volatile ``wall_time`` (which stays out of the canonical
        artifacts).
        """
        return {
            "key": self.spec.content_key(),
            "spec": self.spec.to_dict(),
            "scenario_id": self.scenario_id,
            "nodes": self.nodes,
            "edges": self.edges,
            "flows": self.flows,
            "total_volume": self.total_volume,
            "wall_time": self.wall_time,
            "values": dict(self.values),
            "error": self.error,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from a stored record.

        The stored key is checked against the reconstructed spec's own
        content key, so records written by an incompatible schema
        version fail loudly instead of silently matching wrong cells.
        """
        try:
            spec = ScenarioSpec.from_dict(record["spec"])
            result = cls(
                spec=spec,
                scenario_id=str(record["scenario_id"]),
                nodes=int(record["nodes"]),
                edges=int(record["edges"]),
                flows=int(record["flows"]),
                total_volume=float(record["total_volume"]),
                wall_time=float(record["wall_time"]),
                values={
                    str(k): float(v) for k, v in record["values"].items()
                },
                error=record["error"],
            )
        except ExperimentError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ExperimentError(f"malformed cell record: {exc}") from exc
        if record["key"] != spec.content_key():
            raise ExperimentError(
                f"cell record key {record['key']!r} does not match its "
                f"spec (expected {spec.content_key()!r}); the artifact "
                f"was written by an incompatible version"
            )
        return result

    def comparable(self) -> Tuple:
        """The identity-relevant payload, timing excluded.

        Two runs of one deterministic cell agree on everything except
        ``wall_time``; this is the equality merge conflict detection
        uses.
        """
        return (
            self.spec,
            self.scenario_id,
            self.nodes,
            self.edges,
            self.flows,
            self.total_volume,
            tuple(sorted(self.values.items())),
            self.error,
        )


def _payments_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    economics = economics_under_traffic(
        graph, graph, traffic, payment_rule=spec.payment_rule
    )
    total_paid = sum(e.paid for e in economics.values())
    true_cost = sum(e.true_transit_cost for e in economics.values())
    return {
        "total_payment": total_paid,
        "true_transit_cost": true_cost,
        # VCG individual rationality makes this >= 1 on every scenario;
        # its distribution over the grid is the paper's overpayment story.
        "overpayment_ratio": total_paid / true_cost if true_cost else 1.0,
    }


def _convergence_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    stats = measure_convergence(graph, link_delays=spec.link_delays())
    return {
        "phase1_events": float(stats.phase1_events),
        "phase2_events": float(stats.phase2_events),
        "convergence_events": float(stats.total_events),
        "messages": float(stats.total_messages),
        "computations": float(stats.total_computations),
    }


def _detection_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    deviation = DEVIATION_CATALOGUE[spec.deviation]
    nodes = sorted(graph.nodes, key=repr)
    deviant = nodes[spec.deviant_index % len(nodes)]
    baseline = FaithfulFPSSProtocol(graph, traffic).run()
    deviated = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=faithful_deviant_factory(deviation, deviant),
    ).run()
    gain = deviated.utilities[deviant] - baseline.utilities[deviant]
    return {
        "detected": float(deviated.detection.detected_any),
        "deviator_gain": gain,
        "restarts": float(deviated.detection.restarts),
        "flags": float(len(deviated.detection.all_flags)),
        "progressed": float(deviated.progressed),
    }


def _faithfulness_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    names = spec.faithfulness_deviations or _DEFAULT_FAITHFULNESS_DEVIATIONS
    mechanism = routing_distributed_mechanism(
        graph, traffic, deviations=names, faithful=True
    )
    profiles = [TypeProfile({n: graph.cost(n) for n in graph.nodes})]
    verdict = proposition1_verdict(mechanism, profiles)
    return verdict.summary()


def _churn_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    """Dynamic-topology probe: churn the graph, verify every epoch.

    Draws a seeded :func:`~repro.sim.churn.random_churn_schedule`
    (independent of the topology/traffic/delay draws), runs the
    :class:`~repro.routing.dynamic.DynamicTopologyEngine` with the
    scenario's traffic re-routed after every reconvergence epoch, and
    reports reconvergence cost and service quality.  The engine's
    epoch-equivalence oracle stays on, so every cell also *asserts*
    post-epoch tables equal a fresh fixed point.
    """
    import random as _random

    from ..routing.dynamic import run_dynamic_fpss
    from ..sim.churn import random_churn_schedule

    kinds = ("cost", "link-down", "link-up")
    if spec.churn_membership:
        kinds = kinds + ("leave", "join")
    schedule = random_churn_schedule(
        graph,
        _random.Random(spec.seed + 3),  # independent of draws +0/+1/+2
        epochs=spec.churn_epochs,
        events_per_epoch=spec.churn_events,
        kinds=kinds,
        cost_range=(spec.cost_low, spec.cost_high),
        require="connected",
        seed=spec.seed + 3,
    )
    run = run_dynamic_fpss(
        graph,
        schedule,
        traffic=dict(traffic),
        link_delays=spec.link_delays(),
    )
    return {
        "churn_epochs_run": float(len(run.epochs)),
        "churn_events_applied": float(
            sum(len(report.events) for report in run.epochs)
        ),
        "initial_messages": float(run.initial_messages),
        "reconvergence_events": float(
            sum(report.reconvergence_events for report in run.epochs)
        ),
        "reconvergence_messages": float(
            sum(report.reconvergence_messages for report in run.epochs)
        ),
        "reconvergence_time": float(
            sum(report.reconvergence_time for report in run.epochs)
        ),
        "message_amplification": run.message_amplification,
        "availability": run.availability,
        "routed_flows": float(
            sum(report.routed_flows for report in run.epochs)
        ),
        "unroutable_flows": float(
            sum(report.unroutable_flows for report in run.epochs)
        ),
        "churn_payments": sum(report.payments_total for report in run.epochs),
    }


def _settlement_probe(
    spec: ScenarioSpec, graph, traffic
) -> Dict[str, float]:
    """Batched-bank probe: settle synthesized reports, net, audit.

    Builds honest execution reports straight from the scenario's VCG
    route bundle (no packet simulation), runs the columnar settle with
    epoch netting, checks the per-flow and batch transfer lists net to
    bit-identical money positions, and dry-runs forced settlement
    (honest reports -> no shortfall, no deposit draw).  The headline
    metric is ``netting_ratio``: per-flow transfer records per batch
    payout row.
    """
    from ..faithful.bank import BankNode
    from ..faithful.settlement import (
        net_positions,
        synthesize_execution_reports,
    )

    reports = synthesize_execution_reports(graph, traffic, repeats=1)
    bank = BankNode()
    bank.reports["execution"] = reports
    node_ids = tuple(sorted(graph.nodes, key=repr))
    declared = {n: graph.cost(n) for n in node_ids}
    result = bank.settle_netted(node_ids, declared)
    per_flow = net_positions(result.per_flow_transfers, nodes=node_ids)
    netted = net_positions(result.transfers, nodes=node_ids)
    drift = max(
        abs(per_flow[n] - netted[n]) for n in node_ids
    )
    forced = bank.run_forced_settlement(result.ledger, at_time=0.0)
    payouts = result.net_payouts
    return {
        "flows_settled": float(result.flows_settled),
        "flow_groups": float(result.flow_groups),
        "transfer_records": float(result.transfer_records),
        "net_transfers": float(len(result.transfers)),
        "net_payouts": float(payouts),
        "netting_ratio": (
            result.transfer_records / payouts if payouts else 1.0
        ),
        "net_position_drift": drift,
        "forced_settlements": float(len(forced)),
        "settlement_flags": float(len(result.flags)),
    }


_PROBES = {
    "payments": _payments_probe,
    "convergence": _convergence_probe,
    "detection": _detection_probe,
    "faithfulness": _faithfulness_probe,
    "churn": _churn_probe,
    "settlement": _settlement_probe,
}


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario and return its typed result.

    Library-level failures (:class:`ReproError`) are captured into the
    result's ``error`` field so one bad cell cannot sink a whole sweep;
    programming errors still propagate.
    """
    spec.validate()
    started = time.perf_counter()
    nodes = edges = flows = 0
    volume = 0.0
    values: Dict[str, float] = {}
    error: Optional[str] = None
    probe_span = (
        span("cell.probe", key=spec.content_key(), probe=spec.probe)
        if BUS.enabled
        else NOOP_SPAN
    )
    with probe_span:
        try:
            # Construction stays inside the capture: generator-level
            # failures (e.g. a heavy-tail distribution with a zero
            # anchor) are per-cell data, not grounds to abort the grid.
            graph = spec.build_graph()
            traffic = spec.build_traffic(graph)
            nodes, edges = len(graph.nodes), len(graph.edges)
            flows = sum(1 for v in traffic.values() if v > 0)
            volume = sum(traffic.values())
            values = _PROBES[spec.probe](spec, graph, traffic)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        probe_span.note(ok=error is None)
    return ScenarioResult(
        spec=spec,
        scenario_id=spec.scenario_id(),
        nodes=nodes,
        edges=edges,
        flows=flows,
        total_volume=volume,
        wall_time=time.perf_counter() - started,
        values=values,
        error=error,
    )


def run_scenario_traced(
    spec: ScenarioSpec,
) -> Tuple[ScenarioResult, Dict[str, int]]:
    """Run one scenario, capturing its telemetry counter totals.

    The scenario's instrumentation lands in an in-memory ring on the
    default bus (never a file) and is reduced to aggregated counter
    totals — the "workers enqueue, the parent serializes" half that
    lets pooled workers ship telemetry home as a plain picklable dict
    riding alongside the result.
    """
    with BUS.capture() as sink:
        result = run_scenario(spec)
    return result, aggregate_counters(sink.events)


def _run_indexed(item: Tuple[int, ScenarioSpec]) -> Tuple[int, ScenarioResult]:
    index, spec = item
    return index, run_scenario(spec)


def _run_indexed_traced(
    item: Tuple[int, ScenarioSpec],
) -> Tuple[int, ScenarioResult, Dict[str, int]]:
    index, spec = item
    result, counters = run_scenario_traced(spec)
    return index, result, counters


class SweepRunner:
    """Execute a list of scenarios, serially or across a worker pool.

    Parameters
    ----------
    scenarios:
        The concrete grid (a :class:`SweepSpec` or a plain sequence) —
        possibly one shard of a larger grid, see
        :func:`~repro.experiments.spec.shard_grid`.
    workers:
        ``1`` (the default) runs in-process.  Larger values fan out
        over a ``multiprocessing`` pool; results come back in grid
        order regardless of completion order.  ``0`` means "one worker
        per available CPU".
    resume_dir:
        A prior artifact directory.  Cells whose content key appears in
        its ``cells.jsonl`` with a result are *reused*, not re-run; the
        store tolerates a truncated final record, so resuming from a
        killed sweep loses at most the cells that were in flight.
    retry_errors:
        With ``resume_dir``, re-run cells whose prior record captured
        an error instead of reusing the error row.
    allow_empty:
        Accept an empty grid (a shard of a grid smaller than the shard
        count) and return no results instead of raising.
    progress:
        Print one line to stderr per completed cell (status, probe,
        content key, wall time).  Off by default; stderr only, so
        canonical stdout/artifact output is unaffected.

    After :meth:`run`, ``self.reused`` counts the cells satisfied from
    ``resume_dir`` rather than executed.
    """

    def __init__(
        self,
        scenarios,
        workers: int = 1,
        resume_dir: Optional[str] = None,
        retry_errors: bool = False,
        allow_empty: bool = False,
        progress: bool = False,
    ) -> None:
        if isinstance(scenarios, SweepSpec):
            scenarios = scenarios.scenarios
        self.scenarios: Tuple[ScenarioSpec, ...] = tuple(scenarios)
        if not self.scenarios and not allow_empty:
            raise ExperimentError("nothing to sweep")
        for spec in self.scenarios:
            spec.validate()
        if workers < 0:
            raise ExperimentError("workers must be non-negative")
        if workers == 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.resume_dir = resume_dir
        self.retry_errors = retry_errors
        self.reused = 0
        self.progress = progress

    def run(
        self,
        store_dir: Optional[str] = None,
        feed=None,
        feed_name: str = "sweep",
    ) -> List[ScenarioResult]:
        """All results, in the same order as ``self.scenarios``.

        With ``store_dir``, every completed cell is appended to that
        directory's ``cells.jsonl`` as it finishes (one atomic line per
        cell), so a killed run leaves a resumable prefix behind.  Cells
        reused from ``resume_dir`` are copied into the store as well,
        making the store self-contained even when it is a fresh
        directory.

        With ``feed`` (a :class:`~repro.obs.feed.SweepFeed`), the run
        publishes its lifecycle — sweep/cell start, finish, error,
        reuse — and each executed cell additionally runs under a
        telemetry capture whose aggregated counters ride on its
        completion record.  Only this (parent) process writes the feed;
        pooled workers return their counters with the result, so serial
        and pooled runs emit record-equivalent feeds.  The feed never
        touches the canonical artifacts.
        """
        # Imported lazily: artifacts.py needs ScenarioResult from this
        # module at import time.
        from .artifacts import CellStore

        prior: Dict[str, ScenarioResult] = {}
        if self.resume_dir is not None:
            resume_store = CellStore(self.resume_dir)
            if not resume_store.exists():
                # A typo'd --resume silently re-running the whole grid
                # would discard hours of prior compute; fail loudly.
                raise ExperimentError(
                    f"cannot resume: no cells.jsonl in "
                    f"{self.resume_dir!r} (not a sweep artifact "
                    f"directory)"
                )
            prior = resume_store.load()
        store: Optional[CellStore] = None
        stored_keys: set = set()
        if store_dir is not None:
            store = CellStore(store_dir)
            stored_keys = set(store.load())
            store.ensure()

        results: List[Optional[ScenarioResult]] = [None] * len(self.scenarios)
        pending: List[Tuple[int, ScenarioSpec]] = []
        self.reused = 0
        for index, spec in enumerate(self.scenarios):
            key = spec.content_key()
            hit = prior.get(key)
            if hit is not None and (hit.ok or not self.retry_errors):
                results[index] = hit
                self.reused += 1
                if store is not None and key not in stored_keys:
                    store.append(hit)
                    stored_keys.add(key)
            else:
                pending.append((index, spec))

        if feed is not None:
            feed.sweep_start(
                name=feed_name,
                total=len(self.scenarios),
                pending=len(pending),
                reused=self.reused,
                workers=self.workers,
            )
            for result in results:
                if result is not None:
                    feed.cell_reused(result)

        done = 0

        def record(
            index: int,
            result: ScenarioResult,
            counters: Optional[Dict[str, int]] = None,
        ) -> None:
            nonlocal done
            done += 1
            results[index] = result
            if store is not None:
                store.append(result)
            if feed is not None:
                feed.cell_result(result, counters)
            if self.progress:
                status = (
                    "ok"
                    if result.ok
                    else (result.error or "error").split(":", 1)[0]
                )
                print(
                    f"[{done}/{len(pending)}] {status} "
                    f"{result.spec.probe} {result.spec.content_key()} "
                    f"({result.wall_time:.2f}s)",
                    file=sys.stderr,
                    flush=True,
                )

        if self.workers == 1 or len(pending) <= 1:
            for index, spec in pending:
                if feed is not None:
                    feed.cell_start(spec)
                    result, counters = run_scenario_traced(spec)
                    record(index, result, counters)
                else:
                    record(index, run_scenario(spec))
        else:
            self._run_pooled(pending, record, feed)

        if feed is not None:
            final = [r for r in results if r is not None]
            feed.sweep_finish(
                completed=len(final),
                failures=sum(1 for r in final if not r.ok),
            )
        return [r for r in results if r is not None]

    def _run_pooled(self, pending, record, feed=None) -> None:
        # fork shares the imported library with the children for free;
        # platforms without it (Windows, macOS spawn default) fall back
        # to the default start method, which re-imports repro.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods and sys.platform != "win32" else None
        )
        if feed is not None:
            # All dispatch records are written up front by this
            # process; workers only ever enqueue into their own rings.
            for _index, spec in pending:
                feed.cell_start(spec)
        with context.Pool(processes=self.workers) as pool:
            if feed is not None:
                for index, result, counters in pool.imap_unordered(
                    _run_indexed_traced, pending, chunksize=1
                ):
                    record(index, result, counters)
            else:
                for index, result in pool.imap_unordered(
                    _run_indexed, pending, chunksize=1
                ):
                    record(index, result)


def run_sweep(
    sweep: SweepSpec, workers: int = 1
) -> List[ScenarioResult]:
    """Convenience wrapper: expand-free execution of a parsed sweep."""
    return SweepRunner(sweep, workers=workers).run()
