"""Experiment runners and report rendering."""

from .experiments import (
    SweepPoint,
    faithful_deviation_table,
    make_faithful_runner,
    make_plain_runner,
    plain_deviation_table,
    routing_distributed_mechanism,
    seeded,
)
from .report import render_markdown_table, render_table

__all__ = [
    "SweepPoint",
    "faithful_deviation_table",
    "make_faithful_runner",
    "make_plain_runner",
    "plain_deviation_table",
    "render_markdown_table",
    "render_table",
    "routing_distributed_mechanism",
    "seeded",
]
