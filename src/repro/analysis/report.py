"""Plain-text and markdown table rendering for experiment output.

The benchmark harness prints the same rows the paper's conceptual
artifacts define (Figure 1 paths, Example 1 utilities, detection
matrices); these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _stringify(value: Any, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_digits: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [
        [_stringify(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row arity does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_digits: int = 3,
) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = [_stringify(cell, float_digits) for cell in row]
        if len(cells) != len(headers):
            raise ValueError("row arity does not match headers")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
