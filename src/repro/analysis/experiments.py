"""Experiment runners tying the protocols to the analysis machinery.

These helpers are what the benchmarks and examples call: they build
runners for the deviation explorer, package the routing mechanism as a
:class:`~repro.mechanism.distributed.DistributedMechanism` so the
generic IC/CC/AC verifiers apply, and provide seeded sweep utilities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import MechanismError
from ..faithful.manipulations import (
    DEVIATION_CATALOGUE,
    DeviationSpec,
    faithful_deviant_factory,
    plain_deviant_factory,
)
from ..faithful.protocol import FaithfulFPSSProtocol, PlainFPSSProtocol
from ..games.deviation import DeviationTable, explore_deviations
from ..mechanism.distributed import (
    DistributedMechanism,
    DistributedStrategy,
    MechanismRun,
)
from ..mechanism.types import TypeProfile
from ..routing.graph import ASGraph, NodeId


def make_faithful_runner(
    graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    catalogue: Optional[Mapping[str, DeviationSpec]] = None,
    **protocol_kwargs,
):
    """A :data:`~repro.games.deviation.MechanismRunner` over the
    faithful protocol: one run per (deviant node, deviation name)."""
    specs = dict(catalogue) if catalogue is not None else dict(DEVIATION_CATALOGUE)

    def runner(node: Optional[NodeId], deviation: Optional[str]):
        if node is None:
            protocol = FaithfulFPSSProtocol(graph, traffic, **protocol_kwargs)
        else:
            spec = specs[deviation]
            protocol = FaithfulFPSSProtocol(
                graph,
                traffic,
                node_factory=faithful_deviant_factory(spec, node),
                **protocol_kwargs,
            )
        result = protocol.run()
        return result.utilities, result.detection.detected_any

    return runner


def make_plain_runner(
    graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    catalogue: Optional[Mapping[str, DeviationSpec]] = None,
    **protocol_kwargs,
):
    """The same runner over the plain, trusting protocol.

    Plain FPSS has no detector, so the second element of the runner's
    result is always False.
    """
    specs = dict(catalogue) if catalogue is not None else {
        name: spec
        for name, spec in DEVIATION_CATALOGUE.items()
        if spec.plain_capable
    }

    def runner(node: Optional[NodeId], deviation: Optional[str]):
        if node is None:
            protocol = PlainFPSSProtocol(graph, traffic, **protocol_kwargs)
        else:
            spec = specs[deviation]
            protocol = PlainFPSSProtocol(
                graph,
                traffic,
                node_factory=plain_deviant_factory(spec, node),
                **protocol_kwargs,
            )
        result = protocol.run()
        return result.utilities, False

    return runner


def faithful_deviation_table(
    graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    nodes: Optional[Sequence[NodeId]] = None,
    deviations: Optional[Sequence[str]] = None,
    **protocol_kwargs,
) -> DeviationTable:
    """Explore the catalogue against the faithful specification."""
    runner = make_faithful_runner(graph, traffic, **protocol_kwargs)
    return explore_deviations(
        runner,
        nodes=tuple(nodes) if nodes is not None else graph.nodes,
        deviations=tuple(deviations)
        if deviations is not None
        else tuple(DEVIATION_CATALOGUE),
    )


def plain_deviation_table(
    graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    nodes: Optional[Sequence[NodeId]] = None,
    deviations: Optional[Sequence[str]] = None,
    **protocol_kwargs,
) -> DeviationTable:
    """Explore the plain-capable catalogue against plain FPSS."""
    runner = make_plain_runner(graph, traffic, **protocol_kwargs)
    plain_names = tuple(
        name
        for name, spec in DEVIATION_CATALOGUE.items()
        if spec.plain_capable
    )
    return explore_deviations(
        runner,
        nodes=tuple(nodes) if nodes is not None else graph.nodes,
        deviations=tuple(deviations) if deviations is not None else plain_names,
    )


# ----------------------------------------------------------------------
# DistributedMechanism packaging (for the generic verifiers)
# ----------------------------------------------------------------------


def routing_distributed_mechanism(
    graph: ASGraph,
    traffic: Mapping[Tuple[NodeId, NodeId], float],
    deviations: Optional[Sequence[str]] = None,
    faithful: bool = True,
    **protocol_kwargs,
) -> DistributedMechanism:
    """Package a routing protocol as ``dM = (g, Sigma, s^m)``.

    The strategy space of every node is {suggested} plus the selected
    catalogue entries; the engine runs the corresponding protocol.
    Types are the nodes' true transit costs: the engine applies the
    profile's costs to the graph, so the verifiers' "for all theta"
    quantifier ranges over transit-cost assignments.
    """
    names = tuple(deviations) if deviations is not None else tuple(
        name
        for name, spec in DEVIATION_CATALOGUE.items()
        if faithful or spec.plain_capable
    )
    suggested = DistributedStrategy(name="suggested")
    strategies: Dict[NodeId, List[DistributedStrategy]] = {}
    for node in graph.nodes:
        options = [suggested]
        for name in names:
            spec = DEVIATION_CATALOGUE[name]
            options.append(
                DistributedStrategy(
                    name=name,
                    deviation_classes=spec.classes,
                    payload=spec,
                )
            )
        strategies[node] = options

    def engine(
        assignment: Mapping[NodeId, DistributedStrategy], types: TypeProfile
    ) -> MechanismRun:
        costed = graph.with_costs(
            {node: float(types.type_of(node)) for node in types.agents}
        )
        deviants = {
            node: strategy
            for node, strategy in assignment.items()
            if not strategy.is_suggested
        }
        if len(deviants) > 1:
            raise MechanismError(
                "the routing engine evaluates unilateral deviations only"
            )
        if faithful:
            if deviants:
                (node, strategy), = deviants.items()
                factory = faithful_deviant_factory(strategy.payload, node)
            else:
                factory = None
            protocol = FaithfulFPSSProtocol(
                costed, traffic, node_factory=factory, **protocol_kwargs
            )
        else:
            if deviants:
                (node, strategy), = deviants.items()
                factory = plain_deviant_factory(strategy.payload, node)
            else:
                factory = None
            protocol = PlainFPSSProtocol(
                costed, traffic, node_factory=factory, **protocol_kwargs
            )
        result = protocol.run()
        return MechanismRun(utilities=result.utilities, outcome_data=result)

    return DistributedMechanism(
        engine,
        strategies,
        {node: suggested for node in graph.nodes},
        name="faithful-fpss" if faithful else "plain-fpss",
    )


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------


@dataclass
class SweepPoint:
    """One (seed, size) measurement in a sweep."""

    seed: int
    size: int
    values: Dict[str, float] = field(default_factory=dict)


def seeded(seed: int) -> random.Random:
    """A fresh deterministic generator."""
    return random.Random(seed)
