"""Data model for lint findings, suppressions, and reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is the path as given to the engine (kept verbatim so the
    ``file:line`` rendering is clickable from the invocation
    directory), ``line`` is 1-based.
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line rule-id message`` line."""
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, str, str]:
        """Deterministic ordering: path, line, rule, message."""
        return (self.path, self.line, self.rule, self.message)


@dataclass(frozen=True)
class Suppression:
    """One ``# lint: allow[rule-id] reason`` comment.

    ``line`` is the line the comment sits on; it silences matching
    findings on that line and the line directly below (so it can be
    written above a long statement).
    """

    path: str
    line: int
    rule: str
    reason: str

    def render(self) -> str:
        """Human-readable one-line summary."""
        reason = self.reason if self.reason else "<no reason>"
        return f"{self.path}:{self.line} allow[{self.rule}] {reason}"


@dataclass
class LintReport:
    """Outcome of linting a set of files.

    ``active`` findings fail the run; ``suppressed`` and
    ``allowlisted`` findings are recorded (and counted in the output)
    but do not.  ``unused_suppressions`` are allow-comments that
    matched nothing — surfaced as ``lint-meta`` findings by the engine
    so the suppression inventory cannot rot silently.
    """

    active: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    allowlisted: List[Tuple[Finding, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no active findings remain."""
        return not self.active

    def extend(self, other: "LintReport") -> None:
        """Fold another report (e.g. one file's) into this one."""
        self.active.extend(other.active)
        self.suppressed.extend(other.suppressed)
        self.allowlisted.extend(other.allowlisted)
        self.files_checked += other.files_checked

    def finalize(self) -> None:
        """Sort all sections into deterministic order."""
        self.active.sort(key=lambda f: f.sort_key())
        self.suppressed.sort(key=lambda pair: pair[0].sort_key())
        self.allowlisted.sort(key=lambda pair: pair[0].sort_key())

    def to_json_obj(self) -> Dict[str, object]:
        """JSON-serialisable rendering used by ``--format json``."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "active": [
                {"path": f.path, "line": f.line, "rule": f.rule, "message": f.message}
                for f in self.active
            ],
            "suppressed": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "message": f.message,
                    "reason": s.reason,
                }
                for f, s in self.suppressed
            ],
            "allowlisted": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "message": f.message,
                    "reason": reason,
                }
                for f, reason in self.allowlisted
            ],
        }

    def render_text(self) -> str:
        """Multi-line human-readable report."""
        lines: List[str] = []
        for finding in self.active:
            lines.append(finding.render())
        if self.suppressed:
            lines.append(f"-- {len(self.suppressed)} suppressed finding(s):")
            for finding, supp in self.suppressed:
                lines.append(f"   {finding.render()} [allowed: {supp.reason}]")
        if self.allowlisted:
            lines.append(f"-- {len(self.allowlisted)} allowlisted finding(s):")
            for finding, reason in self.allowlisted:
                lines.append(f"   {finding.render()} [allowlist: {reason}]")
        verdict = "OK" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {self.files_checked} file(s), "
            f"{len(self.active)} active, {len(self.suppressed)} suppressed, "
            f"{len(self.allowlisted)} allowlisted"
        )
        return "\n".join(lines)
