"""Configuration for the determinism lint: rule scopes and allowlists.

The analyzer distinguishes three scopes:

* **canonical-path modules** — the files whose iteration order reaches
  wire payloads, digests, or artifact rows.  R1 (unordered-iter) and
  the materialisation half of R2 apply only here; a bare-set loop in a
  plotting helper is noise, the same loop in the kernel is a replay
  bug.
* **cost/payment modules** — prefixes where R4 (float-eq) applies;
  float equality elsewhere (e.g. test scaffolding) is out of scope.
* **everything under the lint roots** — R2 ``hash()``/``id()`` calls
  and R3 entropy/wall-clock rules apply globally, softened only by the
  explicit per-(module, rule) allowlist below.

``module_rel`` maps an absolute path to the module-relative form used
in all three scopes ("routing/kernel.py").  Files outside a ``repro``
package root (e.g. test fixture snippets) get ``rel=None`` and are
linted in *strict* mode: every rule applies, nothing is allowlisted —
which is exactly what the golden-rule tests want.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

#: Modules whose iteration order can escape into wire payloads,
#: digests, or artifact rows (ISSUE 6 tentpole list).
CANONICAL_PATH_MODULES: FrozenSet[str] = frozenset(
    {
        "routing/kernel.py",
        "routing/kernel_dict.py",
        "routing/fpss.py",
        "routing/tables.py",
        "faithful/mirror.py",
        "faithful/bank.py",
        "faithful/settlement.py",
        "sim/events.py",
        "experiments/artifacts.py",
    }
)

#: Module prefixes where float-equality comparisons touch costs or
#: payments and are therefore R4 targets.
FLOAT_EQ_PREFIXES: Tuple[str, ...] = ("routing/", "mechanism/", "faithful/")

#: Per-(module, rule) allowlist with reasons — for whole-pattern
#: exemptions that are policy, not per-line accidents.  Wall-clock
#: reads in the experiment runner are sanctioned instrumentation: the
#: wall_time they produce is recorded per cell but evicted from every
#: comparable artifact (results.csv / summary.csv) and ignored by the
#: resume/merge equivalence checks.
MODULE_RULE_ALLOWLIST: Mapping[Tuple[str, str], str] = {
    ("experiments/runner.py", "wall-clock"): (
        "sanctioned wall-time instrumentation; excluded from comparable artifacts"
    ),
    # The telemetry subsystem quarantines its one wall-clock read at
    # the JSONL sink boundary: records carry logical sim-time
    # everywhere, and only JsonlSink stamps wall_time as a record
    # leaves the process for the feed file.  The rest of obs/ (trace
    # spans, in-memory capture, status reduction) stays clock-free and
    # is NOT allowlisted, so a wall-clock read creeping into trace.py
    # or feed.py still flags.
    ("obs/events.py", "wall-clock"): (
        "wall time quarantined to the JSONL feed sink boundary; "
        "canonical artifacts never read it"
    ),
}


def module_rel(path: str) -> Optional[str]:
    """Module-relative form of ``path`` ("routing/kernel.py").

    Splits on the *last* path component named ``repro`` so nested
    checkouts resolve the same way.  Returns None for paths outside a
    repro package root; the engine then lints them in strict mode.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            tail = parts[i + 1 :]
            if tail:
                return "/".join(tail)
            return None
    return None


@dataclass(frozen=True)
class LintConfig:
    """Tunable rule scopes; defaults encode the repo policy."""

    canonical_modules: FrozenSet[str] = CANONICAL_PATH_MODULES
    float_eq_prefixes: Tuple[str, ...] = FLOAT_EQ_PREFIXES
    allowlist: Mapping[str, str] = field(
        default_factory=lambda: {
            f"{mod}::{rule}": reason
            for (mod, rule), reason in MODULE_RULE_ALLOWLIST.items()
        }
    )

    def allow_reason(self, rel: Optional[str], rule: str) -> Optional[str]:
        """The allowlist reason for (module, rule), or None."""
        if rel is None:
            return None
        return self.allowlist.get(f"{rel}::{rule}")


@dataclass(frozen=True)
class ModuleContext:
    """Resolved scope of one file, handed to every rule visitor."""

    path: str
    rel: Optional[str]
    config: LintConfig

    @property
    def strict(self) -> bool:
        """True for files outside a repro root — all rules apply."""
        return self.rel is None

    @property
    def canonical(self) -> bool:
        """True when R1/R2-materialisation apply to this file."""
        return self.strict or self.rel in self.config.canonical_modules

    @property
    def cost_scope(self) -> bool:
        """True when R4 float-equality applies to this file."""
        if self.strict:
            return True
        assert self.rel is not None
        return self.rel.startswith(self.config.float_eq_prefixes)


#: Shared default configuration instance.
DEFAULT_CONFIG = LintConfig()
