"""R1/R2: unordered-iteration and hash-order-escape rules.

Both rules hinge on knowing which expressions are *set-typed*.  The
:class:`SetTypeIndex` makes a first pass over the module collecting
names, ``self`` attributes, and callables that provably carry
``set``/``frozenset`` values (literal assignments, ``set()`` /
``frozenset()`` constructor calls, ``Set``/``FrozenSet`` annotations),
then :func:`is_set_typed` answers the question structurally for
arbitrary expressions: set operators (``| & - ^``) over set-typed or
dict-view operands, ``.union()``-family calls, ``dict.fromkeys`` of a
set, conditional expressions, and calls to set-returning functions.

The inference is deliberately conservative in both directions — it
only claims *set-typed* when the source says so, and a wrapping
``sorted(...)`` call is never set-typed, which is exactly the
sanctioned drain idiom.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .config import ModuleContext
from .findings import Finding

RULE_UNORDERED_ITER = "unordered-iter"
RULE_HASH_ESCAPE = "hash-escape"

#: Methods that return a new set when called on a set receiver.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Dict-view accessors; views over ``|``-style combinations are
#: unordered even though a plain dict view is insertion-ordered.
_DICT_VIEW_METHODS = frozenset({"keys", "items", "values"})

#: Annotation heads that mean "this is a set".
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """True when an annotation expression denotes a set type.

    Handles ``Set[T]``, ``typing.Set[T]``, ``Optional[Set[T]]``, and
    PEP 604 unions like ``Set[T] | None``.
    """
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        head = node.value
        if isinstance(head, ast.Name) and head.id == "Optional":
            return _annotation_is_set(node.slice)
        if isinstance(head, ast.Attribute) and head.attr == "Optional":
            return _annotation_is_set(node.slice)
        return _annotation_is_set(head)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_set(node.left) or _annotation_is_set(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return False
        return _annotation_is_set(parsed.body)
    return False


class SetTypeIndex:
    """Module-wide registry of provably set-typed names and callables."""

    def __init__(self) -> None:
        self.module_names: Set[str] = set()
        self.self_attrs: Set[str] = set()
        self.set_returning_funcs: Set[str] = set()

    @classmethod
    def build(cls, tree: ast.Module) -> "SetTypeIndex":
        """Collect set-typed facts in a first pass over ``tree``.

        Module-level *names* come only from module-level statements
        (a function-local ``pending = set()`` must not taint every
        other scope's ``pending``); ``self`` attributes and
        set-returning callables are collected module-wide.
        """
        index = cls()
        for stmt in tree.body:
            if isinstance(stmt, ast.AnnAssign) and _annotation_is_set(stmt.annotation):
                if isinstance(stmt.target, ast.Name):
                    index.module_names.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign) and _expr_is_set_literalish(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        index.module_names.add(target.id)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_is_set(node.returns):
                    index.set_returning_funcs.add(node.name)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation):
                    index._note_self_attr(node.target)
            elif isinstance(node, ast.Assign):
                if _expr_is_set_literalish(node.value):
                    for target in node.targets:
                        index._note_self_attr(target)
        return index

    def _note_self_attr(self, target: ast.expr) -> None:
        """Record a ``self.attr = <set>`` target as set-typed."""
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                self.self_attrs.add(target.attr)


def _expr_is_set_literalish(node: ast.expr) -> bool:
    """True for syntactic set constructors, without needing an index."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
    return False


def is_set_typed(
    node: ast.expr, index: SetTypeIndex, local_names: Set[str]
) -> bool:
    """True when ``node`` provably evaluates to an unordered set."""
    if _expr_is_set_literalish(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_names or node.id in index.module_names
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "self":
            return node.attr in index.self_attrs
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        # One provably set-valued operand is enough: set | x / x & set
        # either evaluates to a set or raises, so requiring both sides
        # would let `unknown_param & {...}` escape the rule, while
        # plain integer bitmask arithmetic has neither side set-typed.
        return _set_op_operand(node.left, index, local_names) or _set_op_operand(
            node.right, index, local_names
        )
    if isinstance(node, ast.IfExp):
        return is_set_typed(node.body, index, local_names) or is_set_typed(
            node.orelse, index, local_names
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_RETURNING_METHODS and is_set_typed(
                func.value, index, local_names
            ):
                return True
            if func.attr == "fromkeys" and node.args:
                head = func.value
                if isinstance(head, ast.Name) and head.id == "dict":
                    return is_set_typed(node.args[0], index, local_names)
            if func.attr in index.set_returning_funcs:
                return True
            return False
        if isinstance(func, ast.Name) and func.id in index.set_returning_funcs:
            return True
    return False


def _set_op_operand(
    node: ast.expr, index: SetTypeIndex, local_names: Set[str]
) -> bool:
    """An operand making a ``| & - ^`` expression set-valued.

    Either an outright set-typed expression or a dict view — the
    union of two ``.keys()`` views is a set regardless of the dicts'
    own insertion order.
    """
    if is_set_typed(node, index, local_names):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in _DICT_VIEW_METHODS and not node.args
    return False


class _ScopeVisitor(ast.NodeVisitor):
    """Walks the module tracking per-function set-typed local names."""

    def __init__(self, ctx: ModuleContext, index: SetTypeIndex) -> None:
        self.ctx = ctx
        self.index = index
        self.findings: List[Finding] = []
        self._local_stack: List[Set[str]] = []

    # -- scope management ------------------------------------------------

    @property
    def _locals(self) -> Set[str]:
        return self._local_stack[-1] if self._local_stack else set()

    def _enter_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        local: Set[str] = set()
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            args.vararg,
            args.kwarg,
        ]:
            if arg is not None and _annotation_is_set(arg.annotation):
                local.add(arg.arg)
        self._collect_local_assignments(node, local)
        self._local_stack.append(local)

    def _collect_local_assignments(self, func: ast.AST, local: Set[str]) -> None:
        """Pre-scan a function body for set-typed local bindings."""
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if is_set_typed(node.value, self.index, local) or _expr_is_set_literalish(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation) and isinstance(
                    node.target, ast.Name
                ):
                    local.add(node.target.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._local_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._local_stack.pop()

    # -- R1: unordered iteration -----------------------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if not self.ctx.canonical:
            return
        if is_set_typed(iter_node, self.index, self._locals):
            self.findings.append(
                Finding(
                    path=self.ctx.path,
                    line=iter_node.lineno,
                    rule=RULE_UNORDERED_ITER,
                    message=(
                        "iteration over unordered set-typed expression; "
                        "drain via sorted(..., key=repr) or annotate why "
                        "order cannot escape"
                    ),
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    # -- R2: hash-order escapes ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in {"hash", "id"}:
                self.findings.append(
                    Finding(
                        path=self.ctx.path,
                        line=node.lineno,
                        rule=RULE_HASH_ESCAPE,
                        message=(
                            f"builtin {func.id}() is seed/process-dependent; "
                            "use a canonical key (repr / stable_hash) instead"
                        ),
                    )
                )
            elif (
                func.id in {"list", "tuple"}
                and self.ctx.canonical
                and node.args
                and is_set_typed(node.args[0], self.index, self._locals)
            ):
                self.findings.append(
                    Finding(
                        path=self.ctx.path,
                        line=node.lineno,
                        rule=RULE_HASH_ESCAPE,
                        message=(
                            f"{func.id}() materialises unordered set order "
                            "into a sequence; sort first with key=repr"
                        ),
                    )
                )
        self.generic_visit(node)


def check_ordering(tree: ast.Module, ctx: ModuleContext) -> List[Finding]:
    """Run R1 + R2 over one parsed module."""
    index = SetTypeIndex.build(tree)
    visitor = _ScopeVisitor(ctx, index)
    visitor.visit(tree)
    return visitor.findings
