"""Rule engine: parse, scan comments, dispatch rules, apply suppressions.

The engine is a pure function from source text to a
:class:`~repro.analysis.lint.findings.LintReport`; :func:`lint_paths`
layers a deterministic (sorted) file walk on top.  Suppression
semantics:

* ``# lint: allow[rule-id] reason`` silences matching findings on its
  own line or the line directly below.
* A suppression without a reason is itself a ``lint-meta`` finding —
  the policy is that every exemption documents *why* order/entropy
  cannot escape.
* A suppression that matched nothing is a ``lint-meta`` finding, so
  stale exemptions surface when the code they covered is fixed.
* Per-(module, rule) allowlist entries from the config are applied
  before suppressions and reported separately.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Tuple

from .config import DEFAULT_CONFIG, LintConfig, ModuleContext, module_rel
from .entropy import check_entropy
from .findings import Finding, LintReport, Suppression
from .ordering import check_ordering
from .purity import check_purity

RULE_LINT_META = "lint-meta"
RULE_PARSE_ERROR = "parse-error"

_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*allow\[([a-z0-9-]+)\]\s*(.*)$")
_PURITY_RE = re.compile(r"#\s*purity:\s*([a-z0-9-]+)")


def _scan_comments(
    source: str, path: str
) -> Tuple[List[Suppression], List[str], List[Finding]]:
    """Extract suppressions and purity markers from comment tokens."""
    suppressions: List[Suppression] = []
    contracts: List[str] = []
    problems: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        problems.append(
            Finding(
                path=path,
                line=1,
                rule=RULE_PARSE_ERROR,
                message=f"tokenize failed: {exc}",
            )
        )
        return suppressions, contracts, problems
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(tok.string)
        if match:
            suppressions.append(
                Suppression(
                    path=path,
                    line=tok.start[0],
                    rule=match.group(1),
                    reason=match.group(2).strip(),
                )
            )
            continue
        match = _PURITY_RE.search(tok.string)
        if match:
            contracts.append(match.group(1))
    return suppressions, contracts, problems


def lint_source(
    source: str, path: str, config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint one module's source text and return its report."""
    report = LintReport(files_checked=1)
    ctx = ModuleContext(path=path, rel=module_rel(path), config=config)

    suppressions, contracts, comment_problems = _scan_comments(source, path)
    report.active.extend(comment_problems)

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if not comment_problems:  # tokenize already reported the break
            report.active.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    rule=RULE_PARSE_ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            )
        report.finalize()
        return report

    raw: List[Finding] = []
    raw.extend(check_ordering(tree, ctx))
    raw.extend(check_entropy(tree, ctx))
    raw.extend(check_purity(tree, ctx, contracts))

    # Index suppressions by (rule, covered line).  Line L covers
    # findings on L and L+1 so the comment can sit above a statement.
    by_key: Dict[Tuple[str, int], List[int]] = {}
    for i, supp in enumerate(suppressions):
        for covered in (supp.line, supp.line + 1):
            by_key.setdefault((supp.rule, covered), []).append(i)
    used = [False] * len(suppressions)

    for finding in raw:
        allow_reason = config.allow_reason(ctx.rel, finding.rule)
        if allow_reason is not None:
            report.allowlisted.append((finding, allow_reason))
            continue
        indices = by_key.get((finding.rule, finding.line), [])
        if indices:
            idx = indices[0]
            used[idx] = True
            report.suppressed.append((finding, suppressions[idx]))
        else:
            report.active.append(finding)

    for i, supp in enumerate(suppressions):
        if not supp.reason:
            report.active.append(
                Finding(
                    path=path,
                    line=supp.line,
                    rule=RULE_LINT_META,
                    message=(
                        f"suppression allow[{supp.rule}] has no reason; "
                        "every exemption must say why order/entropy "
                        "cannot escape"
                    ),
                )
            )
        if not used[i]:
            report.active.append(
                Finding(
                    path=path,
                    line=supp.line,
                    rule=RULE_LINT_META,
                    message=(
                        f"unused suppression allow[{supp.rule}]; "
                        "remove it or move it to the offending line"
                    ),
                )
            )

    report.finalize()
    return report


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        out.append(os.path.join(dirpath, filename))
        else:
            out.append(path)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Iterable[str], config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (deterministic order)."""
    total = LintReport()
    for filepath in _iter_python_files(paths):
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            total.active.append(
                Finding(
                    path=filepath,
                    line=1,
                    rule=RULE_PARSE_ERROR,
                    message=f"unreadable: {exc}",
                )
            )
            total.files_checked += 1
            continue
        total.extend(lint_source(source, filepath, config))
    total.finalize()
    return total
