"""R3/R4: ambient entropy, wall-clock reads, and float-equality.

R3 polices the two nondeterminism sources that survive a fixed
``PYTHONHASHSEED``: the module-level ``random`` functions (shared
ambient state no replay can reconstruct) and wall-clock reads.  Code
must thread an explicitly seeded ``random.Random(seed)`` instead; the
only sanctioned clock reads are the instrumentation sites named in the
config allowlist, whose output is evicted from comparable artifacts.

R4 flags ``==`` / ``!=`` against float literals (or ``float(...)``
calls) in cost/payment modules, where accumulated path costs make
exact comparison a replay-divergence hazard across summation orders.
"""

from __future__ import annotations

import ast
from typing import List

from .config import ModuleContext
from .findings import Finding

RULE_UNSEEDED_RANDOM = "unseeded-random"
RULE_WALL_CLOCK = "wall-clock"
RULE_FLOAT_EQ = "float-eq"

#: Ambient-state functions of the ``random`` module.
_RANDOM_MODULE_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Wall-clock reading attributes of the ``time`` module.
_TIME_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Wall-clock class methods of ``datetime`` / ``date``.
_DATETIME_CLOCK_FUNCS = frozenset({"now", "utcnow", "today"})


def _root_name(node: ast.expr) -> str:
    """The base identifier of a dotted expression ("time.perf_counter" -> "time")."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _EntropyVisitor(ast.NodeVisitor):
    """Collects R3/R4 findings for one module."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []

    def _emit(self, line: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(path=self.ctx.path, line=line, rule=rule, message=message)
        )

    # -- R3: imports -----------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = sorted(
                alias.name for alias in node.names if alias.name != "Random"
            )
            if bad:
                self._emit(
                    node.lineno,
                    RULE_UNSEEDED_RANDOM,
                    "importing ambient-state random function(s) "
                    f"{', '.join(bad)}; use an explicit random.Random(seed)",
                )
        elif node.module == "time":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in _TIME_CLOCK_FUNCS
            )
            if bad:
                self._emit(
                    node.lineno,
                    RULE_WALL_CLOCK,
                    f"importing wall-clock function(s) {', '.join(bad)}; "
                    "clock reads are only sanctioned at allowlisted "
                    "instrumentation sites",
                )
        self.generic_visit(node)

    # -- R3: calls -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            root = _root_name(func.value)
            if root == "random":
                if func.attr in _RANDOM_MODULE_FUNCS:
                    self._emit(
                        node.lineno,
                        RULE_UNSEEDED_RANDOM,
                        f"random.{func.attr}() draws from ambient shared "
                        "state; thread a seeded random.Random instead",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._emit(
                        node.lineno,
                        RULE_UNSEEDED_RANDOM,
                        "random.Random() without a seed is "
                        "OS-entropy-seeded; pass an explicit seed",
                    )
            elif root == "time" and func.attr in _TIME_CLOCK_FUNCS:
                self._emit(
                    node.lineno,
                    RULE_WALL_CLOCK,
                    f"time.{func.attr}() reads the wall clock; replayable "
                    "code must use simulated time",
                )
            elif (
                func.attr in _DATETIME_CLOCK_FUNCS
                and _root_name(func.value) in {"datetime", "date"}
            ):
                self._emit(
                    node.lineno,
                    RULE_WALL_CLOCK,
                    f"{ast.unparse(func)}() reads the wall clock; "
                    "replayable code must use simulated time",
                )
        elif isinstance(func, ast.Name) and func.id == "Random":
            if not node.args and not node.keywords:
                self._emit(
                    node.lineno,
                    RULE_UNSEEDED_RANDOM,
                    "Random() without a seed is OS-entropy-seeded; "
                    "pass an explicit seed",
                )
        self.generic_visit(node)

    # -- R4: float equality ----------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.ctx.cost_scope:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands, operands[1:], strict=False
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_float_operand(side) for side in (left, right)):
                    self._emit(
                        node.lineno,
                        RULE_FLOAT_EQ,
                        "exact ==/!= against a float in cost/payment code; "
                        "compare with an explicit tolerance or justify "
                        "exactness",
                    )
                    break
        self.generic_visit(node)


def _is_float_operand(node: ast.expr) -> bool:
    """True for float literals, ``float(...)`` calls, and float-literal arithmetic."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id == "float"
    return False


def check_entropy(tree: ast.Module, ctx: ModuleContext) -> List[Finding]:
    """Run R3 + R4 over one parsed module."""
    visitor = _EntropyVisitor(ctx)
    visitor.visit(tree)
    return visitor.findings
