"""R5: purity contracts declared via ``# purity: <name>`` markers.

A module opts into a contract with a marker comment (conventionally
right under the docstring); the registry below maps contract names to
what the contract bans.  The ``kernel`` contract encodes the
ReplayKernel bargain from ``docs/architecture.md``: a mirror must be
able to re-run the kernel from a message log alone, so the kernel may
not read I/O or clocks, import ambient-entropy modules, mutate module
globals, or mutate its arguments (messages are shared between the
principal's kernel and every checker's mirror — mutation at one would
corrupt the other's replay).

Checks are syntactic and rooted: a store or mutator-method call is
attributed to the base name of its attribute/subscript chain, so
``table[k].append(x)`` counts against ``table``.  Rebinding a
parameter name is not mutation; ``self``/``cls`` are exempt (instance
state is the kernel's own).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Optional, Set

from .config import ModuleContext
from .findings import Finding

RULE_KERNEL_PURITY = "kernel-purity"

#: In-place mutator method names on builtin containers.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


@dataclass(frozen=True)
class PurityContract:
    """What one named contract forbids."""

    name: str
    banned_imports: FrozenSet[str]
    banned_calls: FrozenSet[str]
    forbid_global_mutation: bool = True
    forbid_arg_mutation: bool = True


#: Registry of known contracts; ``# purity: kernel`` selects "kernel".
CONTRACTS: Mapping[str, PurityContract] = {
    "kernel": PurityContract(
        name="kernel",
        banned_imports=frozenset(
            {
                "asyncio",
                "datetime",
                "io",
                "logging",
                "multiprocessing",
                "os",
                "pathlib",
                "random",
                "secrets",
                "shutil",
                "socket",
                "subprocess",
                "sys",
                "tempfile",
                "threading",
                "time",
                "uuid",
            }
        ),
        banned_calls=frozenset(
            {
                "__import__",
                "breakpoint",
                "eval",
                "exec",
                "globals",
                "input",
                "open",
                "print",
            }
        ),
    ),
}


def _store_root(node: ast.expr) -> Optional[str]:
    """Base name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _PurityVisitor(ast.NodeVisitor):
    """Checks one module against one purity contract."""

    def __init__(
        self, ctx: ModuleContext, contract: PurityContract, module_names: Set[str]
    ) -> None:
        self.ctx = ctx
        self.contract = contract
        self.module_names = module_names
        self.findings: List[Finding] = []
        self._param_stack: List[Set[str]] = []

    def _emit(self, line: int, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                rule=RULE_KERNEL_PURITY,
                message=f"[{self.contract.name}] {message}",
            )
        )

    # -- imports ---------------------------------------------------------

    def _check_import_name(self, name: str, line: int) -> None:
        top = name.split(".")[0]
        if top in self.contract.banned_imports:
            self._emit(line, f"import of {top!r} is banned by the contract")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import_name(alias.name, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self._check_import_name(node.module, node.lineno)
        self.generic_visit(node)

    # -- calls and globals -----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.contract.banned_calls:
            self._emit(node.lineno, f"call to {func.id}() is banned by the contract")
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            root = _store_root(func.value)
            self._check_mutation_root(root, node.lineno, f".{func.attr}() call")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._emit(node.lineno, "global statement (module-state mutation)")
        self.generic_visit(node)

    # -- stores ----------------------------------------------------------

    def _check_mutation_root(self, root: Optional[str], line: int, what: str) -> None:
        if root is None or root in {"self", "cls"}:
            return
        if self._param_stack and root in self._param_stack[-1]:
            self._emit(line, f"argument {root!r} mutated via {what}")
        elif root in self.module_names:
            self._emit(line, f"module global {root!r} mutated via {what}")

    def _check_store_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._check_mutation_root(_store_root(target), line, "item/attribute store")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    # -- function scopes -------------------------------------------------

    def _enter_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        params = {
            arg.arg
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                args.vararg,
                args.kwarg,
            ]
            if arg is not None
        }
        self._param_stack.append(params)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._param_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._param_stack.pop()


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by module-level assignments (mutation targets)."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def check_purity(
    tree: ast.Module, ctx: ModuleContext, contract_names: List[str]
) -> List[Finding]:
    """Run R5 for every contract the module declares."""
    findings: List[Finding] = []
    module_names = _module_level_names(tree)
    for name in contract_names:
        contract = CONTRACTS.get(name)
        if contract is None:
            findings.append(
                Finding(
                    path=ctx.path,
                    line=1,
                    rule=RULE_KERNEL_PURITY,
                    message=f"unknown purity contract {name!r}",
                )
            )
            continue
        visitor = _PurityVisitor(ctx, contract, module_names)
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return findings
