"""Determinism and replay-safety static analysis for the repro library.

The paper's entire checking story (Proposition 1, checker mirrors)
rests on deterministic replay: a mirror re-executing a principal's
computation must produce bit-identical digests, and the orchestration
layer extends that contract to byte-identical sweep artifacts.  Node
ids are arbitrary ``Hashable`` values, so under CPython hash
randomization any bare ``set``/``dict``-view iteration order or
``hash()``-dependent tie-break that escapes into wire payloads,
digests, or emitted rows silently breaks replay/resume/merge
equivalence.  This package makes that contract machine-checked.

Rules
-----
``unordered-iter`` (R1)
    Iterating a set-typed expression (or a dict keyed from one) in a
    *canonical-path module* without draining it through
    ``sorted(..., key=repr)``.
``hash-escape`` (R2)
    ``hash()`` / ``id()`` calls anywhere, and ``list``/``tuple``
    materialisation of set-typed expressions in canonical-path
    modules — unordered order escaping into sequences, digests, or
    wire rows.
``unseeded-random`` / ``wall-clock`` (R3)
    Ambient ``random`` module functions, unseeded ``random.Random()``,
    and wall-clock reads (``time.time``, ``perf_counter``, ...)
    outside the configured instrumentation allowlist.
``float-eq`` (R4)
    ``==`` / ``!=`` against float literals in cost/payment code.
``kernel-purity`` (R5)
    Purity-contract violations in modules declaring ``# purity:
    <contract>`` — I/O, banned imports, module-global mutation,
    argument mutation.

Suppressions are inline comments of the form ``# lint:
allow[rule-id] reason`` on the flagged line or the line above; the
engine requires every suppression to carry a reason and reports the
unused ones, so the suppression inventory cannot silently rot.  See
``docs/determinism.md`` for the full contract and policy.
"""

from __future__ import annotations

from .config import DEFAULT_CONFIG, LintConfig, ModuleContext, module_rel
from .engine import lint_paths, lint_source
from .findings import Finding, LintReport, Suppression

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "Suppression",
    "lint_paths",
    "lint_source",
    "module_rel",
]
