"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(ReproError):
    """A specification or state machine is malformed.

    Raised when a specification references unknown states or actions,
    when a transition is inconsistent with the machine's alphabet, or
    when a phase decomposition violates its ordering constraints.
    """


class MechanismError(ReproError):
    """A mechanism definition or invocation is invalid.

    Raised for malformed type spaces, outcome rules that fail on valid
    reports, or payment rules evaluated outside their domain.
    """


class GraphError(ReproError):
    """An AS graph violates a structural requirement.

    FPSS requires a biconnected graph with non-negative transit costs;
    violations of these preconditions raise this error.
    """


class NotBiconnectedError(GraphError):
    """The graph is not biconnected, so VCG payments are undefined.

    FPSS assumes biconnectivity so that for every transit node ``k`` on
    a lowest-cost path there exists an alternative path avoiding ``k``.
    """


class RoutingError(ReproError):
    """A routing computation failed (unreachable destination, bad path)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid internal state."""


class ProtocolError(ReproError):
    """A protocol node received a message it cannot interpret."""


class SignatureError(ReproError):
    """A signed message failed verification or used an unknown key."""


class PhaseError(ReproError):
    """A phase transition was attempted out of order or past limits."""


class ConvergenceError(ReproError):
    """A distributed computation failed to reach quiescence in budget."""


class TelemetryError(ReproError):
    """A telemetry feed is corrupt or a record is malformed.

    The ``telemetry.jsonl`` feed shares the cell store's crash
    contract: a torn final line is tolerated, corruption anywhere
    else raises this error.
    """


class ExperimentError(ReproError):
    """A scenario or sweep specification is malformed or unrunnable.

    Raised for unknown topology families, traffic models, probes, or
    grid axes, and for sweep documents that fail validation.
    """
