"""Game-theoretic analysis tools: explicit games and deviation sweeps."""

from .deviation import (
    DeviationOutcome,
    DeviationTable,
    MechanismRunner,
    explore_deviations,
)
from .normalform import GameFamily, NormalFormGame

__all__ = [
    "DeviationOutcome",
    "DeviationTable",
    "GameFamily",
    "MechanismRunner",
    "NormalFormGame",
    "explore_deviations",
]
