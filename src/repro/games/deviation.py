"""The deviation explorer: measure every catalogued manipulation.

This is the executable counterpart of the paper's faithfulness proofs:
for a mechanism runner, a baseline strategy assignment, and a catalogue
of deviations, it evaluates the deviator's realised utility change for
each (node, deviation) pair — under the faithful specification the
gains must all be non-positive (Theorem 1), while under the plain
specification positive entries exhibit the incentive holes the
extension closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import MechanismError

NodeLabel = Hashable
DeviationLabel = str

#: Runs the mechanism with one node deviating (or none for baseline)
#: and returns per-node utilities plus whether a deviation was
#: detected.  ``deviation=None`` means the all-faithful baseline.
MechanismRunner = Callable[
    [Optional[NodeLabel], Optional[DeviationLabel]],
    Tuple[Mapping[NodeLabel, float], bool],
]


@dataclass(frozen=True)
class DeviationOutcome:
    """One (node, deviation) evaluation."""

    node: NodeLabel
    deviation: DeviationLabel
    baseline_utility: float
    deviant_utility: float
    detected: bool
    #: Sum of all nodes' utilities in the two runs (for welfare and
    #: antisocial-objective analysis; 0.0 when the runner predates it).
    baseline_total: float = 0.0
    deviant_total: float = 0.0

    @property
    def gain(self) -> float:
        """The deviator's improvement (<= 0 for a faithful spec)."""
        return self.deviant_utility - self.baseline_utility

    @property
    def others_gain(self) -> float:
        """Utility change of everyone except the deviator."""
        return (self.deviant_total - self.deviant_utility) - (
            self.baseline_total - self.baseline_utility
        )

    def antisocial_gain(self, spite: float = 1.0) -> float:
        """Gain under the Section 5 antisocial objective.

        An antisocial node values its own utility minus ``spite`` times
        everyone else's: deviations that torch the whole network (e.g.
        forcing non-progress) can be *attractive* under this objective
        even though they are strictly losing for a selfish node —
        which is why the paper's faithfulness guarantee is explicitly
        scoped to rational (self-interested) manipulation.
        """
        return self.gain - spite * self.others_gain


@dataclass
class DeviationTable:
    """All outcomes of one exploration run."""

    outcomes: List[DeviationOutcome] = field(default_factory=list)

    @property
    def max_gain(self) -> float:
        """Largest gain any deviation achieved."""
        if not self.outcomes:
            return 0.0
        return max(o.gain for o in self.outcomes)

    @property
    def profitable(self) -> List[DeviationOutcome]:
        """Outcomes with strictly positive gain (tolerance 1e-9)."""
        return [o for o in self.outcomes if o.gain > 1e-9]

    def detection_rate(self, excluding: Sequence[DeviationLabel] = ()) -> float:
        """Fraction of *detectable* deviations that were detected.

        Deviations are counted detectable when they had an observable
        effect (their gain differs from zero or they were detected);
        no-op parameterisations are excluded so the rate is not diluted
        by deviations that never fired.  ``excluding`` removes labels
        the specification deliberately permits — e.g. ``cost-lie`` is a
        *consistent* type misreport that the mechanism neutralises with
        VCG incentives rather than detection (Definition 2 allows it).
        """
        skip = set(excluding)
        fired = [
            o
            for o in self.outcomes
            if o.deviation not in skip and (o.detected or abs(o.gain) > 1e-9)
        ]
        if not fired:
            return 1.0
        return sum(1 for o in fired if o.detected) / len(fired)

    def by_deviation(self) -> Dict[DeviationLabel, List[DeviationOutcome]]:
        """Group outcomes per deviation label."""
        grouped: Dict[DeviationLabel, List[DeviationOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.deviation, []).append(outcome)
        return grouped

    def is_faithful(self, tolerance: float = 1e-9) -> bool:
        """True when no explored deviation strictly profits."""
        return all(o.gain <= tolerance for o in self.outcomes)


def explore_deviations(
    runner: MechanismRunner,
    nodes: Sequence[NodeLabel],
    deviations: Sequence[DeviationLabel],
) -> DeviationTable:
    """Run the full (node x deviation) grid against a baseline.

    The baseline (everyone faithful) is evaluated once; each grid cell
    re-runs the mechanism with exactly one node deviating, matching the
    unilateral quantifier of the ex post Nash definition.
    """
    if not nodes:
        raise MechanismError("no nodes to explore")
    baseline_utilities, baseline_detected = runner(None, None)
    if baseline_detected:
        raise MechanismError(
            "the faithful baseline was flagged as deviant; the "
            "detector is unsound"
        )
    baseline_total = sum(baseline_utilities.values())
    table = DeviationTable()
    for node in nodes:
        for deviation in deviations:
            utilities, detected = runner(node, deviation)
            table.outcomes.append(
                DeviationOutcome(
                    node=node,
                    deviation=deviation,
                    baseline_utility=baseline_utilities[node],
                    deviant_utility=utilities[node],
                    detected=detected,
                    baseline_total=baseline_total,
                    deviant_total=sum(utilities.values()),
                )
            )
    return table
