"""Finite normal-form games and exhaustive equilibrium analysis.

Small, fully enumerable games are where the paper's solution-concept
machinery can be verified *exactly*: best responses, dominant
strategies, pure Nash equilibria, and — for games parameterised by a
type profile — the ex post Nash property (Definition 6) checked over
every state of the world.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from ..errors import MechanismError

Player = Hashable
StrategyLabel = Hashable
Profile = Tuple[StrategyLabel, ...]

#: payoff(profile) -> per-player payoff vector (aligned with players).
PayoffFunction = Callable[[Profile], Sequence[float]]


class NormalFormGame:
    """An explicit finite game.

    Parameters
    ----------
    players:
        Ordered player labels.
    strategy_sets:
        One finite strategy list per player (same order).
    payoff:
        Maps a joint profile (ordered like players) to the payoff
        vector.
    """

    def __init__(
        self,
        players: Sequence[Player],
        strategy_sets: Sequence[Sequence[StrategyLabel]],
        payoff: PayoffFunction,
    ) -> None:
        if len(players) != len(strategy_sets):
            raise MechanismError("one strategy set per player required")
        if not players:
            raise MechanismError("a game needs players")
        for strategies in strategy_sets:
            if not strategies:
                raise MechanismError("empty strategy set")
        self.players: Tuple[Player, ...] = tuple(players)
        self.strategy_sets: Tuple[Tuple[StrategyLabel, ...], ...] = tuple(
            tuple(s) for s in strategy_sets
        )
        self._payoff = payoff
        self._cache: Dict[Profile, Tuple[float, ...]] = {}

    def index_of(self, player: Player) -> int:
        """Position of a player in the ordering."""
        try:
            return self.players.index(player)
        except ValueError:
            raise MechanismError(f"unknown player {player!r}") from None

    def payoffs(self, profile: Profile) -> Tuple[float, ...]:
        """The (cached) payoff vector of one joint profile."""
        profile = tuple(profile)
        if profile not in self._cache:
            vector = tuple(self._payoff(profile))
            if len(vector) != len(self.players):
                raise MechanismError("payoff vector has wrong arity")
            self._cache[profile] = vector
        return self._cache[profile]

    def payoff_of(self, player: Player, profile: Profile) -> float:
        """One player's payoff in one profile."""
        return self.payoffs(profile)[self.index_of(player)]

    def profiles(self) -> Iterable[Profile]:
        """Every joint pure-strategy profile."""
        return itertools.product(*self.strategy_sets)

    # ------------------------------------------------------------------
    # solution concepts
    # ------------------------------------------------------------------

    def unilateral_variants(
        self, profile: Profile, player_index: int
    ) -> Iterable[Profile]:
        """All profiles differing from ``profile`` only at one player."""
        current = profile[player_index]
        for strategy in self.strategy_sets[player_index]:
            if strategy == current:
                continue
            variant = list(profile)
            variant[player_index] = strategy
            yield tuple(variant)

    def best_responses(
        self, player: Player, opponents: Profile
    ) -> List[StrategyLabel]:
        """Best responses of one player to a fixed opponent profile.

        ``opponents`` is a full profile; the player's own entry is
        ignored and replaced by each candidate.
        """
        index = self.index_of(player)
        best: List[StrategyLabel] = []
        best_payoff = None
        for strategy in self.strategy_sets[index]:
            candidate = list(opponents)
            candidate[index] = strategy
            payoff = self.payoff_of(player, tuple(candidate))
            if best_payoff is None or payoff > best_payoff + 1e-12:
                best, best_payoff = [strategy], payoff
            elif abs(payoff - best_payoff) <= 1e-12:
                best.append(strategy)
        return best

    def is_nash(self, profile: Profile, tolerance: float = 1e-9) -> bool:
        """No player gains by a unilateral pure deviation."""
        profile = tuple(profile)
        for index, _player in enumerate(self.players):
            own = self.payoffs(profile)[index]
            for variant in self.unilateral_variants(profile, index):
                if self.payoffs(variant)[index] > own + tolerance:
                    return False
        return True

    def pure_nash_equilibria(self) -> List[Profile]:
        """All pure-strategy Nash equilibria (exhaustive)."""
        return [p for p in self.profiles() if self.is_nash(p)]

    def is_dominant(
        self, player: Player, strategy: StrategyLabel, tolerance: float = 1e-9
    ) -> bool:
        """``strategy`` is weakly dominant for ``player``."""
        index = self.index_of(player)
        others = [
            self.strategy_sets[i]
            for i in range(len(self.players))
            if i != index
        ]
        for combo in itertools.product(*others):
            profile = list(combo)
            profile.insert(index, strategy)
            own = self.payoffs(tuple(profile))[index]
            for alternative in self.strategy_sets[index]:
                if alternative == strategy:
                    continue
                variant = list(combo)
                variant.insert(index, alternative)
                if self.payoffs(tuple(variant))[index] > own + tolerance:
                    return False
        return True


class GameFamily:
    """A game per type profile: the object ex post Nash quantifies over.

    Definition 6 requires the equilibrium property to hold for *every*
    joint type profile; a :class:`GameFamily` materialises one
    :class:`NormalFormGame` per profile and checks them all.
    """

    def __init__(
        self,
        players: Sequence[Player],
        strategy_sets: Sequence[Sequence[StrategyLabel]],
        payoff_for_types: Callable[[Mapping[Player, object], Profile], Sequence[float]],
        type_profiles: Sequence[Mapping[Player, object]],
    ) -> None:
        self.players = tuple(players)
        self.strategy_sets = tuple(tuple(s) for s in strategy_sets)
        self._payoff_for_types = payoff_for_types
        self.type_profiles = list(type_profiles)
        if not self.type_profiles:
            raise MechanismError("a game family needs type profiles")

    def game_at(self, types: Mapping[Player, object]) -> NormalFormGame:
        """The realised game for one type profile."""
        return NormalFormGame(
            self.players,
            self.strategy_sets,
            lambda profile: self._payoff_for_types(types, profile),
        )

    def is_ex_post_nash(
        self, profile: Profile, tolerance: float = 1e-9
    ) -> bool:
        """Definition 6 over the whole family: ``profile`` must be a
        Nash equilibrium of every realised game."""
        return all(
            self.game_at(types).is_nash(profile, tolerance=tolerance)
            for types in self.type_profiles
        )

    def ex_post_equilibria(self) -> List[Profile]:
        """All pure profiles that are ex post Nash across the family."""
        first = self.game_at(self.type_profiles[0])
        return [p for p in first.profiles() if self.is_ex_post_nash(p)]
