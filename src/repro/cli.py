"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``lcp``
    Print the lowest-cost-path tree of a topology from one source
    (optionally the ``LCP_{-k}`` tree avoiding one node).
``payments``
    Print per-node all-pairs VCG payment totals.
``run``
    Run the faithful (or plain) FPSS mechanism and print the settled
    economics and detection report.
``deviate``
    Install one catalogued manipulation on one node, run both the plain
    and faithful protocols, and print the gain/detection comparison.
``catalogue``
    List the manipulation catalogue with classifications.
``sweep``
    Expand a scenario grid (a JSON spec file or the stock grid), run
    it serially or across a worker pool, print per-cell summaries, and
    write CSV/JSON artifacts.  ``--shard I/N`` runs one deterministic
    shard of the grid; ``--resume DIR`` skips cells already recorded
    in a prior artifact directory.
``sweep-merge``
    Merge shard (or partial-run) artifact directories into one
    combined artifact set, recomputing summaries from raw rows.
``tail``
    Print (or ``--follow``) the ``telemetry.jsonl`` feed a sweep run
    with ``--telemetry`` publishes, human-readable or as raw JSON.
``status``
    Reduce a (possibly live, possibly truncated) telemetry feed to a
    progress report: cells done, rate, ETA, error classes, counters.
``lint``
    Run the determinism/replay-safety static analyzer over ``src/repro``
    (or ``--paths``); exits nonzero on any active finding.

Topologies are selected with ``--graph``: ``figure1`` (the paper's
example) or ``random:<n>:<seed>`` (a random biconnected graph).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import List, Optional

from .analysis import render_table
from .analysis.lint import lint_paths
from .errors import ExperimentError, ReproError
from .experiments import (
    SweepRunner,
    canonical_results,
    default_sweep,
    merge_artifacts,
    parse_sweep,
    shard_grid,
    summarize,
    validate_group_by,
    write_artifacts,
)
from .faithful import (
    DEVIATION_CATALOGUE,
    FaithfulFPSSProtocol,
    PlainFPSSProtocol,
    faithful_deviant_factory,
    plain_deviant_factory,
)
from .obs import (
    FeedFollower,
    SweepFeed,
    feed_path,
    feed_status,
    read_feed,
    render_event,
    render_status,
)
from .routing import ASGraph, all_pairs_payments, engine_for, figure1_graph
from .workloads import random_biconnected_graph, uniform_all_pairs


def resolve_graph(spec: str) -> ASGraph:
    """Parse a ``--graph`` argument into an AS graph."""
    if spec == "figure1":
        return figure1_graph()
    if spec.startswith("random:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"bad graph spec {spec!r}; expected random:<n>:<seed>"
            )
        size, seed = int(parts[1]), int(parts[2])
        return random_biconnected_graph(size, random.Random(seed))
    raise ReproError(
        f"unknown graph {spec!r}; use 'figure1' or 'random:<n>:<seed>'"
    )


def cmd_lcp(args: argparse.Namespace) -> int:
    """Print the centralized LCP (or LCP_{-k}) tree of one source."""
    graph = resolve_graph(args.graph)
    source = args.source or graph.nodes[0]
    if source not in graph:
        raise ReproError(f"unknown source {source!r}")
    engine = engine_for(graph)
    avoiding = args.avoiding
    if avoiding is not None and avoiding not in graph:
        raise ReproError(f"unknown node {avoiding!r}")
    tree = engine.tree(source, avoiding=avoiding)
    rows = [
        [destination, "-".join(str(n) for n in entry.path), entry.cost]
        for destination, entry in sorted(tree.items(), key=repr)
    ]
    title = f"Lowest-cost paths from {source}"
    if avoiding is not None:
        title += f" avoiding {avoiding}"
    print(render_table(["destination", "LCP", "transit cost"], rows, title=title))
    return 0


def cmd_payments(args: argparse.Namespace) -> int:
    """Print per-node all-pairs VCG payment totals."""
    graph = resolve_graph(args.graph)
    payments = all_pairs_payments(graph)
    received = {node: 0.0 for node in graph.nodes}
    paid = {node: 0.0 for node in graph.nodes}
    for (source, _), bundle in payments.items():
        paid[source] += bundle.total_payment
        for transit, payment in bundle.payments.items():
            received[transit] += payment
    engine = engine_for(graph)
    rows = [
        [node, graph.cost(node), received[node], paid[node]]
        for node in graph.nodes
    ]
    print(
        render_table(
            ["node", "declared cost", "VCG received", "VCG paid"],
            rows,
            float_digits=2,
            title=(
                f"All-pairs FPSS/VCG payments "
                f"({len(payments)} pairs, {engine.runs} Dijkstra runs)"
            ),
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run the faithful (or plain) mechanism and print the economics."""
    graph = resolve_graph(args.graph)
    traffic = uniform_all_pairs(graph, volume=args.volume)
    if args.plain:
        result = PlainFPSSProtocol(graph, traffic).run()
    else:
        result = FaithfulFPSSProtocol(graph, traffic).run()
    print(f"protocol:   {'plain' if args.plain else 'faithful'} FPSS")
    print(f"certified:  {result.progressed}")
    print(f"restarts:   {result.detection.restarts}")
    print(f"flags:      {len(result.detection.all_flags)}")
    rows = [
        [
            node,
            result.received.get(node, 0.0),
            result.charged.get(node, 0.0),
            result.incurred.get(node, 0.0),
            result.utilities[node],
        ]
        for node in sorted(result.utilities, key=repr)
    ]
    print(
        render_table(
            ["node", "received", "charged", "incurred", "utility"],
            rows,
            float_digits=2,
            title="Settled economics",
        )
    )
    return 0


def cmd_deviate(args: argparse.Namespace) -> int:
    """Compare one manipulation's gain/detection across protocols."""
    graph = resolve_graph(args.graph)
    if args.node not in graph:
        raise ReproError(f"unknown node {args.node!r}")
    if args.deviation not in DEVIATION_CATALOGUE:
        raise ReproError(
            f"unknown deviation {args.deviation!r}; see 'catalogue'"
        )
    spec = DEVIATION_CATALOGUE[args.deviation]
    traffic = uniform_all_pairs(graph, volume=args.volume)

    faithful_base = FaithfulFPSSProtocol(graph, traffic).run()
    faithful = FaithfulFPSSProtocol(
        graph,
        traffic,
        node_factory=faithful_deviant_factory(spec, args.node),
    ).run()
    rows = [
        [
            "faithful",
            faithful.utilities[args.node]
            - faithful_base.utilities[args.node],
            "yes" if faithful.detection.detected_any else "no",
            faithful.detection.restarts,
        ]
    ]
    if spec.plain_capable:
        plain_base = PlainFPSSProtocol(graph, traffic).run()
        plain = PlainFPSSProtocol(
            graph,
            traffic,
            node_factory=plain_deviant_factory(spec, args.node),
        ).run()
        rows.insert(
            0,
            [
                "plain",
                plain.utilities[args.node] - plain_base.utilities[args.node],
                "n/a (no detector)",
                0,
            ],
        )
    print(
        render_table(
            ["protocol", "deviator gain", "detected", "restarts"],
            rows,
            float_digits=3,
            title=f"{args.deviation} by {args.node}",
        )
    )
    return 0


def parse_shard(text: str) -> tuple:
    """Parse ``--shard I/N`` (1-based) into a 0-based (index, count)."""
    parts = text.split("/")
    try:
        index, count = int(parts[0]), int(parts[1])
    except (IndexError, ValueError):
        raise ExperimentError(
            f"bad shard {text!r}; expected I/N, e.g. --shard 2/4"
        ) from None
    if len(parts) != 2 or not 1 <= index <= count:
        raise ExperimentError(
            f"bad shard {text!r}; need 1 <= I <= N, e.g. --shard 2/4"
        )
    return index - 1, count


def _print_cell_table(summaries, metric: str) -> None:
    """The per-cell table both sweep commands print."""
    rows = []
    for summary in summaries:
        stats = summary.stats.get(metric)
        rows.append(
            [
                summary.label(),
                summary.scenarios,
                summary.failures,
                stats.mean if stats else float("nan"),
                stats.std if stats else float("nan"),
                stats.minimum if stats else float("nan"),
                stats.maximum if stats else float("nan"),
            ]
        )
    print(
        render_table(
            ["cell", "n", "fail", "mean", "std", "min", "max"],
            rows,
            float_digits=3,
            title=f"Per-cell {metric}",
        )
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """Expand and execute a scenario grid; print per-cell summaries."""
    if args.spec is not None:
        try:
            with open(args.spec) as handle:
                document = json.load(handle)
        except OSError as exc:
            raise ExperimentError(f"cannot read spec file: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"spec file is not valid JSON: {exc}") from exc
        sweep = parse_sweep(document)
    else:
        sweep = default_sweep()
    group_by = (
        validate_group_by(part for part in args.group_by.split(",") if part)
        if args.group_by
        else sweep.group_by
    )
    scenarios = sweep.scenarios
    shard_note = ""
    if args.shard is not None:
        index, count = parse_shard(args.shard)
        scenarios = shard_grid(scenarios, index, count)
        shard_note = (
            f" [shard {index + 1}/{count}: "
            f"{len(scenarios)}/{len(sweep.scenarios)} cells]"
        )
    runner = SweepRunner(
        scenarios,
        workers=args.workers,
        resume_dir=args.resume,
        retry_errors=args.retry_errors,
        allow_empty=args.shard is not None,
        progress=args.progress,
    )
    if args.telemetry:
        os.makedirs(args.out, exist_ok=True)
        with SweepFeed(args.out) as feed:
            raw = runner.run(
                store_dir=args.out, feed=feed, feed_name=sweep.name
            )
    else:
        raw = runner.run(store_dir=args.out)
    results = canonical_results(raw)
    summaries = summarize(results, group_by=group_by)
    paths = write_artifacts(
        results, summaries, args.out, name=sweep.name, group_by=group_by
    )

    failures = sum(1 for r in results if not r.ok)
    wall = sum(r.wall_time for r in results)
    resume_note = f", {runner.reused} reused" if args.resume else ""
    print(
        f"sweep '{sweep.name}'{shard_note}: {len(results)} scenarios"
        f"{resume_note}, {len(summaries)} cells, {failures} failures, "
        f"{runner.workers} worker(s), {wall:.2f}s scenario time"
    )
    for result in results:
        if not result.ok:
            error = result.error or "unknown"
            error_class = error.split(":", 1)[0]
            print(
                f"failed cell [{error_class}] {result.spec.content_key()} "
                f"(probe={result.spec.probe}): {error}"
            )
    _print_cell_table(summaries, args.metric)
    for kind, path in sorted(paths.items()):
        print(f"artifact [{kind}]: {path}")
    return 1 if failures else 0


def cmd_tail(args: argparse.Namespace) -> int:
    """Print (or follow) a sweep's telemetry feed."""
    path = feed_path(args.feed)

    def show(event) -> None:
        if args.format == "json":
            print(json.dumps(event.to_json_obj(), sort_keys=True), flush=True)
        else:
            print(render_event(event), flush=True)

    if args.follow:
        follower = FeedFollower(path)
        try:
            for event in follower.follow(
                poll_interval=args.interval, max_polls=args.max_polls
            ):
                show(event)
        except KeyboardInterrupt:
            pass
        return 0
    if not os.path.exists(path):
        raise ExperimentError(
            f"no telemetry feed at {path!r} "
            "(run the sweep with --telemetry, or pass --follow to wait)"
        )
    for event in read_feed(path):
        show(event)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Reduce a telemetry feed to a progress report."""
    path = feed_path(args.feed)
    if not os.path.exists(path):
        raise ExperimentError(
            f"no telemetry feed at {path!r} (run the sweep with --telemetry)"
        )
    status = feed_status(read_feed(path))
    if args.format == "json":
        print(json.dumps(status.to_json_obj(), indent=2, sort_keys=True))
    else:
        print(render_status(status))
    return 0


def cmd_sweep_merge(args: argparse.Namespace) -> int:
    """Merge shard artifact directories into one combined artifact set."""
    group_by = (
        validate_group_by(part for part in args.group_by.split(",") if part)
        if args.group_by
        else None  # recovered from the inputs' own sweep.json
    )
    report = merge_artifacts(
        args.dirs, args.out, name=args.name, group_by=group_by
    )
    failures = sum(1 for r in report.results if not r.ok)
    print(
        f"merged '{report.name}': {len(report.results)} cells from "
        f"{report.sources} artifact dir(s), {report.overlaps} "
        f"overlapping, {failures} failures"
    )
    _print_cell_table(report.summaries, args.metric)
    for kind, path in sorted(report.paths.items()):
        print(f"artifact [{kind}]: {path}")
    return 1 if failures else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism analyzer; nonzero exit on active findings."""
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    report = lint_paths(paths)
    if args.format == "json":
        print(json.dumps(report.to_json_obj(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_catalogue(_args: argparse.Namespace) -> int:
    """List the manipulation catalogue with classifications."""
    rows = [
        [
            spec.name,
            "/".join(sorted(c.value for c in spec.classes)),
            spec.stage,
            "yes" if spec.plain_capable else "no",
        ]
        for spec in DEVIATION_CATALOGUE.values()
    ]
    print(
        render_table(
            ["deviation", "action classes", "stage", "plain-capable"],
            sorted(rows),
            title="Manipulation catalogue (Section 4.3)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser with per-command epilogs."""
    raw = argparse.RawDescriptionHelpFormatter
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Faithful distributed mechanisms (Shneidman & Parkes, PODC 2004)",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  python -m repro lcp --graph random:16:1 --source n00\n"
            "  python -m repro deviate false-route-announce C\n"
            "  python -m repro sweep --workers 0 --metric overpayment_ratio\n"
            "Topologies: 'figure1' (the paper's example) or "
            "'random:<n>:<seed>'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lcp = sub.add_parser(
        "lcp",
        help="print an LCP tree",
        formatter_class=raw,
        epilog=(
            "Computes the centralized lowest-cost-path tree from one "
            "source\n(the oracle the distributed FPSS fixed point is "
            "verified against).\n\n"
            "examples:\n"
            "  python -m repro lcp                      # Figure 1, first node\n"
            "  python -m repro lcp --source C --avoiding B\n"
            "  python -m repro lcp --graph random:32:7 --source n00"
        ),
    )
    lcp.add_argument("--graph", default="figure1")
    lcp.add_argument("--source", default=None)
    lcp.add_argument(
        "--avoiding",
        default=None,
        help="print the LCP_{-k} tree that avoids this node",
    )
    lcp.set_defaults(func=cmd_lcp)

    payments = sub.add_parser(
        "payments",
        help="print all-pairs VCG payment totals",
        formatter_class=raw,
        epilog=(
            "Per-node totals of the VCG transit payments "
            "p_k = c_k + d^-k - d\nover every source/destination pair "
            "(the overpayment story of the paper).\n\n"
            "examples:\n"
            "  python -m repro payments\n"
            "  python -m repro payments --graph random:64:1"
        ),
    )
    payments.add_argument("--graph", default="figure1")
    payments.set_defaults(func=cmd_payments)

    run = sub.add_parser(
        "run",
        help="run a full mechanism",
        formatter_class=raw,
        epilog=(
            "Drives both construction phases to quiescence (batched "
            "incremental\nengine), certifies at the bank checkpoints, "
            "sends the traffic matrix,\nand prints the settled "
            "economics.  --plain runs the original trusting\nFPSS "
            "instead of the faithful extension.\n\n"
            "examples:\n"
            "  python -m repro run\n"
            "  python -m repro run --plain --graph random:16:3 --volume 2.0"
        ),
    )
    run.add_argument("--graph", default="figure1")
    run.add_argument("--volume", type=float, default=1.0)
    run.add_argument("--plain", action="store_true")
    run.set_defaults(func=cmd_run)

    deviate = sub.add_parser(
        "deviate",
        help="evaluate one manipulation",
        formatter_class=raw,
        epilog=(
            "Installs one catalogued manipulation on one node and "
            "compares the\ndeviator's gain in plain FPSS (where it may "
            "profit) against the\nfaithful extension (where it is "
            "caught).  See 'catalogue' for names.\n\n"
            "examples:\n"
            "  python -m repro deviate cost-lie C\n"
            "  python -m repro deviate packet-drop n03 --graph random:10:2"
        ),
    )
    deviate.add_argument("deviation")
    deviate.add_argument("node")
    deviate.add_argument("--graph", default="figure1")
    deviate.add_argument("--volume", type=float, default=1.0)
    deviate.set_defaults(func=cmd_deviate)

    catalogue = sub.add_parser(
        "catalogue",
        help="list manipulations",
        formatter_class=raw,
        epilog=(
            "The Section-4.3 manipulation catalogue with action-class "
            "labels\n(information revelation / message passing / "
            "computation), the stage\nthe deviation acts in, and "
            "whether plain FPSS can express it."
        ),
    )
    catalogue.set_defaults(func=cmd_catalogue)

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario grid (optionally one shard, resumable)",
        formatter_class=raw,
        epilog=(
            "Expands a declarative scenario grid and runs its probe per "
            "cell\n(payments, convergence, detection, faithfulness, churn, "
            "settlement),\nserially or over a\nmultiprocessing pool, then writes "
            "results.csv / summary.csv /\nsweep.json / cells.jsonl "
            "artifacts.\n\n"
            "--shard I/N runs the I-th of N deterministic shards of the "
            "grid\n(merge the shard artifacts with 'sweep-merge').  "
            "--resume DIR skips\ncells already recorded in DIR's "
            "cells.jsonl, so a killed sweep\ncontinues where it stopped; "
            "artifacts are byte-identical either way.\n\n"
            "examples:\n"
            "  python -m repro sweep                      # stock 60-scenario grid\n"
            "  python -m repro sweep --workers 0 --out /tmp/artifacts\n"
            "  python -m repro sweep --spec my_grid.json --group-by probe,size\n"
            "  python -m repro sweep --shard 2/4 --out shard2\n"
            "  python -m repro sweep --resume shard2 --shard 2/4 --out shard2"
        ),
    )
    sweep.add_argument(
        "--spec",
        default=None,
        help="JSON sweep document (default: the stock 60-scenario grid)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial, 0 = one per CPU)",
    )
    sweep.add_argument(
        "--out",
        default="sweep-artifacts",
        help="directory for results/summary/sweep/cells artifacts",
    )
    sweep.add_argument(
        "--group-by",
        default=None,
        help="comma-separated spec fields forming the summary cells",
    )
    sweep.add_argument(
        "--metric",
        default="overpayment_ratio",
        help="metric shown in the printed per-cell table",
    )
    sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run the I-th of N deterministic grid shards (1-based)",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="skip cells already recorded in DIR's cells.jsonl",
    )
    sweep.add_argument(
        "--retry-errors",
        action="store_true",
        help="with --resume, re-run cells whose prior record is an error",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "publish a live telemetry.jsonl feed into --out "
            "(consume with 'tail' / 'status'; artifacts are unaffected)"
        ),
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="print one line to stderr per completed cell",
    )
    sweep.set_defaults(func=cmd_sweep)

    tail = sub.add_parser(
        "tail",
        help="print or follow a sweep telemetry feed",
        formatter_class=raw,
        epilog=(
            "Reads the telemetry.jsonl feed a sweep publishes with "
            "--telemetry\n(pass the artifact directory or the feed file "
            "itself).  --follow polls\nfor new records until "
            "interrupted; a torn final line (in-flight\nappend) is "
            "simply picked up on a later poll.\n\n"
            "examples:\n"
            "  python -m repro tail sweep-artifacts\n"
            "  python -m repro tail sweep-artifacts --follow\n"
            "  python -m repro tail sweep-artifacts --format json | jq .kind"
        ),
    )
    tail.add_argument(
        "feed",
        help="sweep artifact directory (or the telemetry.jsonl file)",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new records until interrupted",
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="poll interval in seconds with --follow (default: 0.5)",
    )
    tail.add_argument(
        "--max-polls",
        type=int,
        default=None,
        help="with --follow, stop after this many polls (for scripting)",
    )
    tail.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="record rendering (default: text)",
    )
    tail.set_defaults(func=cmd_tail)

    status = sub.add_parser(
        "status",
        help="progress report from a sweep telemetry feed",
        formatter_class=raw,
        epilog=(
            "Reduces a telemetry feed — live, finished, or truncated by "
            "a kill —\nto a progress report: cells done / in flight / "
            "remaining, completion\nrate and ETA (from the wall stamps "
            "in the records), error classes,\nerrors by probe, churn and "
            "settlement roll-ups (flows settled, net\ntransfers, forced "
            "settlements, deposit draws), and the top merged\ncounters.\n\n"
            "examples:\n"
            "  python -m repro status sweep-artifacts\n"
            "  python -m repro status sweep-artifacts --format json"
        ),
    )
    status.add_argument(
        "feed",
        help="sweep artifact directory (or the telemetry.jsonl file)",
    )
    status.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    status.set_defaults(func=cmd_status)

    merge = sub.add_parser(
        "sweep-merge",
        help="merge sweep artifact directories",
        formatter_class=raw,
        epilog=(
            "Joins the cells.jsonl stores of shard (or partial-run) "
            "artifact\ndirectories on their content keys, refuses "
            "conflicting duplicates,\nrecomputes summaries from the raw "
            "rows, and writes one combined\nartifact set — byte-identical "
            "to the same grid swept in a single\nprocess.\n\n"
            "examples:\n"
            "  python -m repro sweep-merge shard1 shard2 --out merged\n"
            "  python -m repro sweep-merge s1 s2 s3 --out all --group-by probe"
        ),
    )
    merge.add_argument(
        "dirs",
        nargs="+",
        help="artifact directories to merge (each holds a cells.jsonl)",
    )
    merge.add_argument(
        "--out",
        default="sweep-merged",
        help="directory for the combined artifact set",
    )
    merge.add_argument(
        "--name",
        default=None,
        help=(
            "sweep name for the combined sweep.json "
            "(default: recovered from the inputs)"
        ),
    )
    merge.add_argument(
        "--group-by",
        default=None,
        help=(
            "comma-separated spec fields forming the summary cells "
            "(default: recovered from the inputs)"
        ),
    )
    merge.add_argument(
        "--metric",
        default="overpayment_ratio",
        help="metric shown in the printed per-cell table",
    )
    merge.set_defaults(func=cmd_sweep_merge)

    lint = sub.add_parser(
        "lint",
        help="run the determinism/replay-safety analyzer",
        formatter_class=raw,
        epilog=(
            "Static AST analysis enforcing the replay-safety contract of\n"
            "docs/determinism.md: no unordered iteration on canonical "
            "paths, no\nhash()/id() escapes, no ambient randomness or "
            "wall-clock reads, no\nfloat equality in cost code, and the "
            "'# purity: kernel' contract for\nthe replay kernel.  "
            "Suppressions ('# lint: allow[rule] reason') are\ncounted and "
            "printed; exits 1 on any active finding.\n\n"
            "examples:\n"
            "  python -m repro lint\n"
            "  python -m repro lint --format json\n"
            "  python -m repro lint --paths src/repro/routing tools/probe.py"
        ),
    )
    lint.add_argument(
        "--paths",
        nargs="+",
        default=None,
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
