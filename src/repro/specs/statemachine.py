"""State-machine model of node behaviour (paper Section 3.1).

A mechanism specification is expressed in terms of behaviours generated
by state machines.  A state machine ``SM`` consists of

1. a set ``L`` of states, a subset of which are initial states;
2. a set ``A = {IA, EA}`` of actions (internal and external);
3. a set ``T`` of transitions ``(s, a, s')``.

A node's state captures all relevant information about its role in a
mechanism: received messages, partial computations, private knowledge,
and derived knowledge about other nodes.  External actions generate a
message to one or more neighbours; internal actions do not.

The machines here are finite and explicit, which is what the
faithfulness verifiers need: they enumerate alternative specifications
(deviations) over the same machine and compare induced outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from ..errors import SpecificationError
from .actions import Action, ActionKind

State = Hashable
"""States are arbitrary hashable labels."""


@dataclass(frozen=True)
class Transition:
    """A single transition ``(source, action, target)`` in ``T``."""

    source: State
    action: Action
    target: State

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source!r} --{self.action.name}--> {self.target!r}"


class StateMachine:
    """An explicit finite state machine over a typed action alphabet.

    Parameters
    ----------
    states:
        All states ``L`` of the machine.
    initial_states:
        Non-empty subset of ``states`` where execution may begin.
    transitions:
        The transition relation ``T``.  The machine may be
        nondeterministic (several transitions from the same state), but
        a :class:`~repro.specs.specification.Specification` resolves
        the choice by selecting one action per state.

    Raises
    ------
    SpecificationError
        If initial states are not a subset of states, if a transition
        references an unknown state, or if there are no initial states.
    """

    def __init__(
        self,
        states: Iterable[State],
        initial_states: Iterable[State],
        transitions: Iterable[Transition],
    ) -> None:
        self._states: FrozenSet[State] = frozenset(states)
        self._initial: FrozenSet[State] = frozenset(initial_states)
        self._transitions: Tuple[Transition, ...] = tuple(transitions)

        if not self._initial:
            raise SpecificationError("a state machine needs at least one initial state")
        unknown_initial = self._initial - self._states
        if unknown_initial:
            raise SpecificationError(
                f"initial states {sorted(map(repr, unknown_initial))} are not states"
            )
        for t in self._transitions:
            if t.source not in self._states:
                raise SpecificationError(f"transition {t} has unknown source state")
            if t.target not in self._states:
                raise SpecificationError(f"transition {t} has unknown target state")

        self._by_source: Dict[State, List[Transition]] = {}
        for t in self._transitions:
            self._by_source.setdefault(t.source, []).append(t)

        self._actions: FrozenSet[Action] = frozenset(t.action for t in self._transitions)

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------

    @property
    def states(self) -> FrozenSet[State]:
        """The state set ``L``."""
        return self._states

    @property
    def initial_states(self) -> FrozenSet[State]:
        """The initial subset of ``L``."""
        return self._initial

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """The transition relation ``T``."""
        return self._transitions

    @property
    def actions(self) -> FrozenSet[Action]:
        """The action alphabet ``A`` (as used by some transition)."""
        return self._actions

    @property
    def internal_actions(self) -> FrozenSet[Action]:
        """The internal subset ``IA`` of the alphabet."""
        return frozenset(a for a in self._actions if a.kind is ActionKind.INTERNAL)

    @property
    def external_actions(self) -> FrozenSet[Action]:
        """The external subset ``EA`` of the alphabet."""
        return frozenset(a for a in self._actions if a.kind is ActionKind.EXTERNAL)

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------

    def transitions_from(self, state: State) -> Tuple[Transition, ...]:
        """All transitions whose source is ``state``."""
        if state not in self._states:
            raise SpecificationError(f"unknown state {state!r}")
        return tuple(self._by_source.get(state, ()))

    def enabled_actions(self, state: State) -> FrozenSet[Action]:
        """The actions available in ``state``."""
        return frozenset(t.action for t in self.transitions_from(state))

    def successor(self, state: State, action: Action) -> State:
        """The unique target of taking ``action`` in ``state``.

        Raises
        ------
        SpecificationError
            If the action is not enabled in the state or if the machine
            is nondeterministic on that (state, action) pair.
        """
        matches = [t for t in self.transitions_from(state) if t.action == action]
        if not matches:
            raise SpecificationError(
                f"action {action.name!r} is not enabled in state {state!r}"
            )
        if len(matches) > 1:
            raise SpecificationError(
                f"nondeterministic on ({state!r}, {action.name!r}); "
                "a specification must resolve to a unique successor"
            )
        return matches[0].target

    def is_terminal(self, state: State) -> bool:
        """True if no action is enabled in ``state``."""
        return not self.transitions_from(state)

    def reachable_states(self) -> FrozenSet[State]:
        """All states reachable from some initial state."""
        seen: Set[State] = set(self._initial)
        frontier: List[State] = list(self._initial)
        while frontier:
            state = frontier.pop()
            for t in self._by_source.get(state, ()):
                if t.target not in seen:
                    seen.add(t.target)
                    frontier.append(t.target)
        return frozenset(seen)

    def unreachable_states(self) -> FrozenSet[State]:
        """States never visited from any initial state (dead spec code)."""
        return self._states - self.reachable_states()

    def iter_paths(self, max_length: int) -> Iterator[Tuple[Transition, ...]]:
        """Enumerate all executions of length at most ``max_length``.

        Used by the exhaustive verifiers on small machines; the number
        of paths can be exponential in ``max_length``.
        """
        stack: List[Tuple[State, Tuple[Transition, ...]]] = [
            (s, ()) for s in sorted(self._initial, key=repr)
        ]
        while stack:
            state, prefix = stack.pop()
            yield prefix
            if len(prefix) >= max_length:
                continue
            for t in self.transitions_from(state):
                stack.append((t.target, prefix + (t,)))

    def __contains__(self, state: State) -> bool:
        return state in self._states

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateMachine(states={len(self._states)}, "
            f"transitions={len(self._transitions)})"
        )


@dataclass
class Behavior:
    """A finite execution: alternating states and actions.

    ``states[0]`` is the initial state; ``states[i+1]`` results from
    taking ``actions[i]`` in ``states[i]``.
    """

    states: List[State] = field(default_factory=list)
    actions: List[Action] = field(default_factory=list)

    def record(self, action: Action, next_state: State) -> None:
        """Append one step to the behaviour."""
        self.actions.append(action)
        self.states.append(next_state)

    @property
    def length(self) -> int:
        """Number of steps taken."""
        return len(self.actions)

    @property
    def final_state(self) -> State:
        """The last state reached."""
        if not self.states:
            raise SpecificationError("empty behaviour has no final state")
        return self.states[-1]

    def external_trace(self) -> List[Action]:
        """The externally visible projection of the behaviour.

        Two behaviours with the same external trace are
        indistinguishable to other nodes; deviations confined to
        internal actions are therefore unconstrained by the feasible
        strategy space (Section 3.3).
        """
        return [a for a in self.actions if a.is_external]
