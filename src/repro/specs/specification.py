"""Specifications: deterministic action choices over a state machine.

Given a state machine ``SM``, a specification ``s: L -> A`` defines an
action ``s(l)`` for each state ``l`` (paper Section 3.1).  Running a
specification from an initial state yields a behaviour; comparing the
behaviours of a suggested specification and a deviating one is the raw
material for the faithfulness analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..errors import SpecificationError
from .actions import Action, ActionClass
from .statemachine import Behavior, State, StateMachine


class Specification:
    """A deterministic choice of action in every non-terminal state.

    Parameters
    ----------
    machine:
        The state machine over which the specification is defined.
    choice:
        Mapping from state to the action the node should take there.
        Every chosen action must be enabled in its state.  Terminal
        states need no entry.
    name:
        Human-readable label used in reports.

    Raises
    ------
    SpecificationError
        If a chosen action is not enabled, or a reachable non-terminal
        state has no choice.
    """

    def __init__(
        self,
        machine: StateMachine,
        choice: Mapping[State, Action],
        name: str = "spec",
    ) -> None:
        self._machine = machine
        self._choice: Dict[State, Action] = dict(choice)
        self.name = name

        for state, action in self._choice.items():
            if state not in machine:
                raise SpecificationError(f"choice references unknown state {state!r}")
            if action not in machine.enabled_actions(state):
                raise SpecificationError(
                    f"action {action.name!r} is not enabled in state {state!r}"
                )
        for state in machine.reachable_states():
            if not machine.is_terminal(state) and state not in self._choice:
                raise SpecificationError(
                    f"reachable non-terminal state {state!r} has no chosen action"
                )

    @property
    def machine(self) -> StateMachine:
        """The underlying state machine."""
        return self._machine

    def action(self, state: State) -> Optional[Action]:
        """The action chosen in ``state`` (None in terminal states)."""
        return self._choice.get(state)

    def run(self, initial: Optional[State] = None, max_steps: int = 10_000) -> Behavior:
        """Execute the specification and return the behaviour.

        Parameters
        ----------
        initial:
            Starting state; defaults to the machine's unique initial
            state and raises if the machine has several.
        max_steps:
            Safety bound against specifications that loop forever.
        """
        if initial is None:
            initials = sorted(self._machine.initial_states, key=repr)
            if len(initials) != 1:
                raise SpecificationError(
                    "machine has several initial states; pass one explicitly"
                )
            initial = initials[0]
        if initial not in self._machine:
            raise SpecificationError(f"unknown initial state {initial!r}")

        behavior = Behavior(states=[initial])
        state = initial
        for _ in range(max_steps):
            action = self._choice.get(state)
            if action is None:
                return behavior
            state = self._machine.successor(state, action)
            behavior.record(action, state)
        raise SpecificationError(
            f"specification {self.name!r} exceeded {max_steps} steps without halting"
        )

    # ------------------------------------------------------------------
    # deviation construction
    # ------------------------------------------------------------------

    def deviate(
        self,
        overrides: Mapping[State, Action],
        name: Optional[str] = None,
    ) -> "Specification":
        """A new specification that differs only in ``overrides``."""
        merged = dict(self._choice)
        merged.update(overrides)
        return Specification(
            self._machine, merged, name=name or f"{self.name}+dev"
        )

    def deviation_states(self, other: "Specification") -> FrozenSet[State]:
        """States on which two specifications over one machine differ."""
        if other.machine is not self._machine:
            raise SpecificationError("specifications are over different machines")
        keys = set(self._choice) | set(other._choice)
        return frozenset(
            s for s in keys if self._choice.get(s) != other._choice.get(s)
        )

    def deviation_classes(self, other: "Specification") -> FrozenSet[ActionClass]:
        """Action classes touched by the deviation from ``self`` to ``other``.

        A deviation touches a class if, in some state where the two
        specifications differ, either of the two chosen actions belongs
        to that class.  This is what decides whether a deviation is an
        information-revelation, message-passing, or computational
        deviation for the IC/CC/AC analysis.
        """
        classes = set()
        for state in self.deviation_states(other):
            for spec in (self, other):
                action = spec.action(state)
                if action is not None:
                    classes.add(action.action_class)
        return frozenset(classes)

    def restricted_to(
        self, allowed: Iterable[ActionClass]
    ) -> Callable[["Specification"], bool]:
        """Predicate: does a deviation stay within ``allowed`` classes?

        Returns a function usable to filter enumerated deviations, e.g.
        only information-revelation deviations for an IC check.
        """
        allowed_set = frozenset(allowed)

        def predicate(other: "Specification") -> bool:
            return self.deviation_classes(other) <= allowed_set

        return predicate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Specification({self.name!r}, states={len(self._choice)})"


def enumerate_deviations(
    suggested: Specification,
    classes: Optional[Iterable[ActionClass]] = None,
    max_overrides: int = 1,
) -> Iterable[Specification]:
    """Enumerate single- and multi-state deviations from a specification.

    Parameters
    ----------
    suggested:
        The suggested specification ``s^m``.
    classes:
        If given, only deviations whose touched action classes are a
        subset of ``classes`` are yielded (e.g. only message-passing
        deviations for a CC check).
    max_overrides:
        How many states may simultaneously be overridden.  ``1`` gives
        unilateral single-state deviations; larger values enumerate
        joint deviations within one node's strategy.

    Yields
    ------
    Specification
        Every alternative specification differing from ``suggested`` in
        at most ``max_overrides`` states, restricted to the requested
        classes.  The suggested specification itself is not yielded.
    """
    machine = suggested.machine
    reachable = sorted(machine.reachable_states(), key=repr)

    candidates: Dict[State, Tuple[Action, ...]] = {}
    for state in reachable:
        enabled = machine.enabled_actions(state)
        current = suggested.action(state)
        alternatives = tuple(
            a
            for a in sorted(enabled, key=lambda a: a.name)
            if a != current
        )
        if alternatives:
            candidates[state] = alternatives

    allowed = frozenset(classes) if classes is not None else None

    def emit(overrides: Dict[State, Action]) -> Optional[Specification]:
        deviant = suggested.deviate(overrides)
        if allowed is not None and not suggested.deviation_classes(deviant) <= allowed:
            return None
        return deviant

    states = sorted(candidates, key=repr)

    def recurse(index: int, chosen: Dict[State, Action]):
        if chosen:
            spec = emit(dict(chosen))
            if spec is not None:
                yield spec
        if len(chosen) >= max_overrides:
            return
        for i in range(index, len(states)):
            state = states[i]
            for action in candidates[state]:
                chosen[state] = action
                yield from recurse(i + 1, chosen)
                del chosen[state]

    yield from recurse(0, {})
