"""External-action classification (paper Definitions 2-4).

The paper splits the external actions of a distributed mechanism
specification into three disjoint classes:

* **information-revelation** actions (Definition 2): the only effect is
  to reveal *consistent* (possibly partial, possibly untruthful)
  information about the node's own type;
* **message-passing** actions (Definition 3): the only effect is to
  relay a message received from another node;
* **computational** actions (Definition 4): actions that can affect the
  outcome rule beyond what misreporting one's own type could achieve.

Internal actions have no external effect and are unconstrained by the
feasible strategy space (Section 3.3).

This module provides the enumeration used to tag every external effect
produced in a simulation, which is what lets the faithfulness verifiers
in :mod:`repro.mechanism.faithfulness` decide whether a deviation
attacks IC, CC, or AC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class ActionKind(enum.Enum):
    """Whether an action is internal or has an external effect."""

    INTERNAL = "internal"
    EXTERNAL = "external"


class ActionClass(enum.Enum):
    """Classification of actions per paper Definitions 2-4."""

    #: Internal action: no message is generated (Section 3.1).
    INTERNAL = "internal"
    #: Definition 2: reveals consistent information about own type.
    INFORMATION_REVELATION = "information-revelation"
    #: Definition 3: forwards a message received from another node.
    MESSAGE_PASSING = "message-passing"
    #: Definition 4: can affect the outcome rule beyond type misreport.
    COMPUTATION = "computation"

    @property
    def kind(self) -> ActionKind:
        """The :class:`ActionKind` implied by this classification."""
        if self is ActionClass.INTERNAL:
            return ActionKind.INTERNAL
        return ActionKind.EXTERNAL

    @property
    def is_external(self) -> bool:
        """True if actions of this class generate messages."""
        return self.kind is ActionKind.EXTERNAL


#: The three external classes, in the order (r, p, c) used for the
#: sub-strategy decomposition s^m_i = (r^m_i, p^m_i, c^m_i).
EXTERNAL_ACTION_CLASSES = (
    ActionClass.INFORMATION_REVELATION,
    ActionClass.MESSAGE_PASSING,
    ActionClass.COMPUTATION,
)


@dataclass(frozen=True)
class Action:
    """A named action in a state machine alphabet.

    Parameters
    ----------
    name:
        Unique identifier of the action within one machine.
    action_class:
        The classification of the action (Definitions 2-4), defaulting
        to :data:`ActionClass.INTERNAL`.
    metadata:
        Optional free-form annotations (e.g. which table an update
        touches). Not part of equality: two actions are the same action
        iff their ``name`` and ``action_class`` agree.
    """

    name: str
    action_class: ActionClass = ActionClass.INTERNAL
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    @property
    def kind(self) -> ActionKind:
        """Internal or external, derived from the classification."""
        return self.action_class.kind

    @property
    def is_external(self) -> bool:
        """True if executing the action emits a message."""
        return self.action_class.is_external

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.action_class.value}]"


def internal(name: str, **metadata: Any) -> Action:
    """Build an internal action."""
    return Action(name, ActionClass.INTERNAL, metadata)


def revelation(name: str, **metadata: Any) -> Action:
    """Build an information-revelation action (Definition 2)."""
    return Action(name, ActionClass.INFORMATION_REVELATION, metadata)


def message_passing(name: str, **metadata: Any) -> Action:
    """Build a message-passing action (Definition 3)."""
    return Action(name, ActionClass.MESSAGE_PASSING, metadata)


def computation(name: str, **metadata: Any) -> Action:
    """Build a computational action (Definition 4)."""
    return Action(name, ActionClass.COMPUTATION, metadata)
