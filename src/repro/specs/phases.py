"""Phase decomposition with checkpoint certification (Section 3.9).

A distributed mechanism can be decomposed into disjoint phases, each of
which is proven strong-CC and strong-AC without worrying about joint
deviations involving actions in other phases.  Phases are separated at
runtime by checkpoints where some node (the bank, in the interdomain
routing case study) certifies a phase outcome and green-lights the next
phase, or orders a restart when a deviation is detected.

This module provides the runtime scaffolding: an ordered list of
:class:`Phase` objects driven by a :class:`PhasedExecution` that
enforces the ordering, counts restarts, and records certification
outcomes.  The faithful FPSS protocol in :mod:`repro.faithful` is built
on top of it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PhaseError


class PhaseStatus(enum.Enum):
    """Lifecycle of a phase within one mechanism run."""

    PENDING = "pending"
    RUNNING = "running"
    CERTIFIED = "certified"
    RESTARTED = "restarted"
    FAILED = "failed"


class CertificationResult(enum.Enum):
    """Outcome of the checkpoint examination of a finished phase."""

    #: The checkpointing node found no deviation; green-light next phase.
    GREEN_LIGHT = "green-light"
    #: A deviation was detected; the phase must restart.
    RESTART = "restart"


@dataclass
class PhaseRecord:
    """What happened during one attempt at one phase."""

    phase_name: str
    attempt: int
    result: Optional[CertificationResult] = None
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Phase:
    """One disjoint phase of a distributed mechanism.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"construction-1"`` or ``"execution"``.
    run:
        Callable executing the phase body; receives the shared context
        dict and may mutate it (e.g. storing converged tables).
    certify:
        Checkpoint callable deciding :class:`CertificationResult` from
        the shared context; this models the bank's examination.  If
        omitted the phase self-certifies (always green-lit), matching
        specifications without a checkpoint for that phase.
    """

    name: str
    run: Callable[[Dict[str, Any]], None]
    certify: Optional[Callable[[Dict[str, Any]], CertificationResult]] = None

    def execute_once(self, context: Dict[str, Any], attempt: int) -> PhaseRecord:
        """Run the phase body once and certify the outcome."""
        record = PhaseRecord(phase_name=self.name, attempt=attempt)
        self.run(context)
        if self.certify is None:
            record.result = CertificationResult.GREEN_LIGHT
        else:
            record.result = self.certify(context)
        return record


@dataclass
class PhasedExecutionResult:
    """Summary of a full phased run."""

    completed: bool
    records: List[PhaseRecord]
    context: Dict[str, Any]

    @property
    def restarts(self) -> int:
        """Total number of restart certifications across phases."""
        return sum(
            1 for r in self.records if r.result is CertificationResult.RESTART
        )

    @property
    def halted_phase(self) -> Optional[str]:
        """Phase at which progress stopped, or None on completion."""
        if self.completed:
            return None
        return self.records[-1].phase_name if self.records else None

    def attempts(self, phase_name: str) -> int:
        """Number of attempts made at the named phase."""
        return sum(1 for r in self.records if r.phase_name == phase_name)


class PhasedExecution:
    """Drives an ordered sequence of phases with restart semantics.

    A phase whose checkpoint orders a restart is re-run, up to
    ``max_restarts_per_phase`` times; beyond that the mechanism halts
    without progress, which the paper's utility model treats as a
    strongly negative outcome for every node ("we assume that every
    node wishes to make progress in the mechanism").

    Parameters
    ----------
    phases:
        The ordered phases.
    max_restarts_per_phase:
        Restart budget per phase before declaring non-progress.
    on_restart:
        Optional hook invoked with (phase, context) before re-running,
        used by protocols to reset per-phase node state.
    """

    def __init__(
        self,
        phases: Sequence[Phase],
        max_restarts_per_phase: int = 3,
        on_restart: Optional[Callable[[Phase, Dict[str, Any]], None]] = None,
    ) -> None:
        if not phases:
            raise PhaseError("a phased execution needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise PhaseError(f"duplicate phase names in {names}")
        if max_restarts_per_phase < 0:
            raise PhaseError("max_restarts_per_phase must be non-negative")
        self._phases: Tuple[Phase, ...] = tuple(phases)
        self._max_restarts = max_restarts_per_phase
        self._on_restart = on_restart

    @property
    def phases(self) -> Tuple[Phase, ...]:
        """The ordered phases."""
        return self._phases

    def run(self, context: Optional[Dict[str, Any]] = None) -> PhasedExecutionResult:
        """Execute all phases in order, honouring restart requests."""
        ctx: Dict[str, Any] = context if context is not None else {}
        records: List[PhaseRecord] = []
        for phase in self._phases:
            attempt = 0
            while True:
                attempt += 1
                record = phase.execute_once(ctx, attempt)
                records.append(record)
                if record.result is CertificationResult.GREEN_LIGHT:
                    break
                if attempt > self._max_restarts:
                    return PhasedExecutionResult(
                        completed=False, records=records, context=ctx
                    )
                if self._on_restart is not None:
                    self._on_restart(phase, ctx)
        return PhasedExecutionResult(completed=True, records=records, context=ctx)
