"""Specification language: state machines, action classes, strategies, phases.

Implements the formal machinery of paper Sections 3.1-3.4 and the phase
decomposition of Section 3.9.
"""

from .actions import (
    EXTERNAL_ACTION_CLASSES,
    Action,
    ActionClass,
    ActionKind,
    computation,
    internal,
    message_passing,
    revelation,
)
from .phases import (
    CertificationResult,
    Phase,
    PhasedExecution,
    PhasedExecutionResult,
    PhaseRecord,
    PhaseStatus,
)
from .specification import Specification, enumerate_deviations
from .statemachine import Behavior, State, StateMachine, Transition
from .strategy import (
    DecomposedStrategy,
    Strategy,
    SubStrategyProjection,
    tabular_strategy,
)

__all__ = [
    "Action",
    "ActionClass",
    "ActionKind",
    "Behavior",
    "CertificationResult",
    "DecomposedStrategy",
    "EXTERNAL_ACTION_CLASSES",
    "Phase",
    "PhaseRecord",
    "PhaseStatus",
    "PhasedExecution",
    "PhasedExecutionResult",
    "Specification",
    "State",
    "StateMachine",
    "Strategy",
    "SubStrategyProjection",
    "Transition",
    "computation",
    "enumerate_deviations",
    "internal",
    "message_passing",
    "revelation",
    "tabular_strategy",
]
