"""Strategies and the (r, p, c) sub-strategy decomposition (Section 3.3).

In a distributed mechanism it makes sense to talk of a node's strategy
``s_i(theta_i)`` — how it behaves in every state of the world — rather
than just its reported type.  The suggested strategy decomposes into

* ``r^m_i`` — the information-revelation strategy,
* ``p^m_i`` — the message-passing strategy,
* ``c^m_i`` — the computational strategy.

Formally each sub-strategy simulates the entire specification but only
performs its corresponding external actions.  This module models a
strategy as "type -> Specification" and provides that projection, which
the faithfulness verifiers use to build class-restricted deviations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Mapping, Optional, TypeVar

from ..errors import SpecificationError
from .actions import EXTERNAL_ACTION_CLASSES, ActionClass
from .specification import Specification
from .statemachine import Behavior, State

TypeT = TypeVar("TypeT", bound=Hashable)


class Strategy(Generic[TypeT]):
    """A mapping from a node's private type to a specification.

    ``strategy(theta)`` is the specification the node follows when its
    type is ``theta``.  The suggested strategy ``s^m_i`` is one such
    object; deviations are others over the same machines.
    """

    def __init__(
        self,
        select: Callable[[TypeT], Specification],
        name: str = "strategy",
    ) -> None:
        self._select = select
        self.name = name

    def __call__(self, node_type: TypeT) -> Specification:
        return self._select(node_type)

    def behavior(self, node_type: TypeT, **run_kwargs) -> Behavior:
        """Run the specification selected for ``node_type``."""
        return self(node_type).run(**run_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Strategy({self.name!r})"


def tabular_strategy(
    table: Mapping[TypeT, Specification], name: str = "strategy"
) -> Strategy[TypeT]:
    """A strategy given by an explicit type -> specification table."""
    mapping: Dict[TypeT, Specification] = dict(table)

    def select(node_type: TypeT) -> Specification:
        try:
            return mapping[node_type]
        except KeyError:
            raise SpecificationError(
                f"strategy {name!r} has no specification for type {node_type!r}"
            ) from None

    return Strategy(select, name=name)


@dataclass(frozen=True)
class SubStrategyProjection:
    """The projection of a behaviour onto one external-action class.

    Per Section 3.3, each sub-strategy simulates the whole suggested
    specification but only *performs* the external actions of its own
    class.  Two full strategies induce the same sub-strategy for class
    ``k`` exactly when their behaviours agree on class-``k`` actions.
    """

    action_class: ActionClass

    def project(self, behavior: Behavior) -> tuple:
        """The sequence of class-matching external actions taken."""
        return tuple(
            (i, a)
            for i, a in enumerate(behavior.actions)
            if a.action_class is self.action_class
        )

    def agrees(self, first: Behavior, second: Behavior) -> bool:
        """True if two behaviours perform identical class-k actions.

        Positions matter: performing the same forwarding action earlier
        or later is a different message-passing behaviour.
        """
        return self.project(first) == self.project(second)


class DecomposedStrategy(Generic[TypeT]):
    """A strategy together with its (r, p, c) sub-strategy views.

    The decomposition is definitional rather than operational: there is
    one underlying specification per type, and the sub-strategies are
    projections of its behaviour.  ``deviation_profile`` reports which
    sub-strategies a deviating strategy actually changes, which is the
    question the IC/CC/AC definitions ask.
    """

    def __init__(self, strategy: Strategy[TypeT]) -> None:
        self.strategy = strategy
        self.revelation = SubStrategyProjection(ActionClass.INFORMATION_REVELATION)
        self.message_passing = SubStrategyProjection(ActionClass.MESSAGE_PASSING)
        self.computation = SubStrategyProjection(ActionClass.COMPUTATION)

    def projections(self) -> Mapping[ActionClass, SubStrategyProjection]:
        """All three external projections keyed by class."""
        return {
            ActionClass.INFORMATION_REVELATION: self.revelation,
            ActionClass.MESSAGE_PASSING: self.message_passing,
            ActionClass.COMPUTATION: self.computation,
        }

    def deviation_profile(
        self,
        node_type: TypeT,
        deviant: Strategy[TypeT],
        initial: Optional[State] = None,
    ) -> Dict[ActionClass, bool]:
        """Which external sub-strategies does ``deviant`` change?

        Returns a mapping ``class -> changed?`` comparing the behaviour
        of the suggested and the deviant strategy for one type.  A pure
        information-revelation deviation flips only the revelation
        entry; a joint deviation flips several.
        """
        kwargs = {} if initial is None else {"initial": initial}
        suggested_behavior = self.strategy(node_type).run(**kwargs)
        deviant_behavior = deviant(node_type).run(**kwargs)
        return {
            cls: not proj.agrees(suggested_behavior, deviant_behavior)
            for cls, proj in self.projections().items()
        }

    def is_pure_deviation(
        self,
        node_type: TypeT,
        deviant: Strategy[TypeT],
        action_class: ActionClass,
        initial: Optional[State] = None,
    ) -> bool:
        """True if ``deviant`` changes only the given sub-strategy."""
        if action_class not in EXTERNAL_ACTION_CLASSES:
            raise SpecificationError(
                f"{action_class} is not an external action class"
            )
        profile = self.deviation_profile(node_type, deviant, initial=initial)
        return profile[action_class] and not any(
            changed for cls, changed in profile.items() if cls is not action_class
        )
