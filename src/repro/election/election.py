"""The leader-election motivating example (paper Section 3).

"Imagine that a designer specifies a leader-election algorithm to
select a computation server ... The designer wants the most powerful
node to be selected and specifies an algorithm where each node is to
submit its true computation power and then come to a distributed
consensus as to which node should be leader. ... in practice, the
protocol fails to elect the most powerful node."

The node's type here is its *cost of serving* as leader (the local
resources the CPU-intensive chore would consume).  Two mechanisms are
provided:

* :func:`naive_election_mechanism` — the designer's broken protocol:
  report your power (equivalently, your willingness), highest report
  wins, the winner serves uncompensated.  Rational nodes under-report
  and the election selects badly.
* :func:`vcg_election_mechanism` — the repaired, strategyproof
  procurement auction: the lowest-cost node is elected and paid the
  second-lowest reported cost (a VCG/Vickrey payment), so truthful
  reporting is a dominant strategy and the efficient leader wins.

Both are expressed as
:class:`~repro.mechanism.centralized.DirectRevelationMechanism` so the
strategyproofness auditor can exhibit the difference, and a distributed
flooding wrapper (:class:`ElectionNode`) runs the same decision rule as
a consensus over the simulator for the examples.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..errors import MechanismError
from ..mechanism.centralized import DirectRevelationMechanism
from ..mechanism.types import AgentId, Outcome, TypeProfile, TypeSpace
from ..mechanism.utility import UtilityFunction
from ..sim.messages import Message, NodeId
from ..sim.node import ProtocolNode

#: The benefit every node derives from the network having *some*
#: leader (the shared computation service existing at all).
SERVICE_VALUE = 10.0


def _lowest_report(reports: TypeProfile) -> Tuple[AgentId, float, float]:
    """Winner (lowest reported cost), its report, and the runner-up
    report, with deterministic repr tie-breaking."""
    ordered = sorted(
        ((reports.type_of(agent), repr(agent), agent) for agent in reports.agents)
    )
    if len(ordered) < 2:
        raise MechanismError("an election needs at least two candidates")
    winner = ordered[0][2]
    winner_report = ordered[0][0]
    second_report = ordered[1][0]
    return winner, winner_report, second_report


def election_utility() -> UtilityFunction[float]:
    """Quasi-linear utility: service value minus own serving cost.

    ``decision`` is the elected leader; the leader bears its *true*
    cost of serving; everyone enjoys :data:`SERVICE_VALUE`.
    """

    def valuation(agent: AgentId, decision: object, true_cost: float) -> float:
        value = SERVICE_VALUE
        if decision == agent:
            value -= true_cost
        return value

    return UtilityFunction(valuation)


def naive_election_mechanism(
    type_spaces: Mapping[AgentId, TypeSpace[float]],
) -> DirectRevelationMechanism[float]:
    """The broken protocol: serve-the-most-willing, no compensation.

    Nodes report a cost; the mechanism (mis)interprets the lowest
    report as "most powerful / most willing" and elects it without
    payment.  Since serving costs the winner its true cost, every node
    wants to *overstate* its cost to dodge the chore — the race to the
    bottom the paper describes.
    """

    def outcome_rule(reports: TypeProfile) -> Outcome:
        winner, _, _ = _lowest_report(reports)
        return Outcome(decision=winner, transfers={})

    return DirectRevelationMechanism(
        outcome_rule, type_spaces, election_utility(), name="naive-election"
    )


def vcg_election_mechanism(
    type_spaces: Mapping[AgentId, TypeSpace[float]],
) -> DirectRevelationMechanism[float]:
    """The faithful repair: second-price procurement of the leader.

    The lowest-cost reporter serves and is paid the second-lowest
    report.  This is VCG for the single-item procurement setting, so
    truth-telling is a dominant strategy (Definition 5) and the
    elected leader is the efficient one.
    """

    def outcome_rule(reports: TypeProfile) -> Outcome:
        winner, _, second_report = _lowest_report(reports)
        return Outcome(decision=winner, transfers={winner: second_report})

    return DirectRevelationMechanism(
        outcome_rule, type_spaces, election_utility(), name="vcg-election"
    )


def social_cost(profile: TypeProfile, leader: AgentId) -> float:
    """The true cost society pays for the elected leader."""
    return profile.type_of(leader)


def optimal_leader(profile: TypeProfile) -> AgentId:
    """The efficient choice: the node with the lowest true cost."""
    return min(profile.agents, key=lambda a: (profile.type_of(a), repr(a)))


# ----------------------------------------------------------------------
# distributed flavour: report flooding + local argmin consensus
# ----------------------------------------------------------------------

KIND_ELECTION_REPORT = "election-report"


class ElectionNode(ProtocolNode):
    """A node in the distributed election: flood reports, agree on the
    winner by running the same deterministic decision rule locally.

    ``report_bias`` is the deviation seam: a rational node under the
    naive mechanism overstates its cost by this factor to dodge the
    chore.
    """

    def __init__(
        self, node_id: NodeId, true_cost: float, report_bias: float = 1.0
    ) -> None:
        super().__init__(node_id)
        self.true_cost = float(true_cost)
        self.report_bias = float(report_bias)
        self.known_reports: Dict[NodeId, float] = {}

    def reported_cost(self) -> float:
        """The cost this node announces (information revelation)."""
        return self.true_cost * self.report_bias

    def start(self) -> None:
        """Flood the own report."""
        report = self.reported_cost()
        self.known_reports[self.node_id] = report
        self.broadcast(KIND_ELECTION_REPORT, node=self.node_id, cost=report)

    def on_election_report(self, message: Message) -> None:
        """Record novel reports and relay them (flooding)."""
        node = message.payload["node"]
        cost = message.payload["cost"]
        if node in self.known_reports:
            return
        self.known_reports[node] = cost
        for neighbor in self.neighbors:
            if neighbor != message.src:
                self.forward(message, neighbor)

    def winner(self) -> NodeId:
        """The locally computed election outcome (argmin of reports)."""
        if not self.known_reports:
            raise MechanismError(f"{self.node_id!r} has no reports")
        return min(
            self.known_reports, key=lambda n: (self.known_reports[n], repr(n))
        )

    def second_lowest_report(self) -> float:
        """The runner-up report, i.e. the VCG payment to the winner."""
        ordered = sorted(
            (cost, repr(node)) for node, cost in self.known_reports.items()
        )
        if len(ordered) < 2:
            raise MechanismError("need at least two reports")
        return ordered[1][0]
