"""Leader election: the Section 3 motivating example, naive and faithful."""

from .election import (
    KIND_ELECTION_REPORT,
    SERVICE_VALUE,
    ElectionNode,
    election_utility,
    naive_election_mechanism,
    optimal_leader,
    social_cost,
    vcg_election_mechanism,
)

__all__ = [
    "ElectionNode",
    "KIND_ELECTION_REPORT",
    "SERVICE_VALUE",
    "election_utility",
    "naive_election_mechanism",
    "optimal_leader",
    "social_cost",
    "vcg_election_mechanism",
]
