"""Topology generators for the experiments.

FPSS requires biconnected graphs.  Besides the paper's own Figure-1
network, the experiments sweep randomly generated biconnected AS
graphs: a Hamiltonian-cycle backbone (which is already biconnected)
plus random chords, with transit costs drawn from a configurable range.
This mirrors how DAMD evaluations typically model AS-level topologies
at small scale, and every generated graph satisfies the mechanism's
preconditions by construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..routing.graph import ASGraph

__all__ = [
    "COST_DISTRIBUTIONS",
    "draw_costs",
    "figure1_graph",
    "ring_graph",
    "wheel_graph",
    "complete_graph",
    "random_biconnected_graph",
    "node_names",
]

# Re-exported so workloads is the one-stop topology module.
from ..routing.graph import figure1_graph  # noqa: E402  (re-export)


def node_names(count: int, prefix: str = "n") -> List[str]:
    """Deterministic node labels n00, n01, ..."""
    if count < 0:
        raise GraphError("count must be non-negative")
    width = max(2, len(str(max(count - 1, 0))))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


#: Transit-cost distributions accepted by :func:`draw_costs`.
COST_DISTRIBUTIONS = ("uniform", "pareto", "lognormal")


def draw_costs(
    names: Sequence[str],
    rng: random.Random,
    cost_range: Tuple[float, float],
    cost_dist: str = "uniform",
    cost_param: float = 2.5,
) -> Dict[str, float]:
    """Per-node transit costs from a configurable distribution.

    ``"uniform"`` draws from ``cost_range`` directly.  The heavy-tailed
    options anchor at ``cost_range[0]`` (which must then be positive)
    and ignore the upper bound: ``"pareto"`` multiplies it by
    ``Pareto(cost_param)``, ``"lognormal"`` by ``LogNormal(0,
    cost_param)``.  Skewed costs concentrate cheap transit on a few
    nodes, which is what makes VCG overpayment interesting to sweep.
    """
    low, high = cost_range
    if low < 0 or high < low:
        raise GraphError(f"invalid cost range {cost_range}")
    if cost_dist not in COST_DISTRIBUTIONS:
        raise GraphError(
            f"unknown cost_dist {cost_dist!r}; "
            f"expected one of {COST_DISTRIBUTIONS}"
        )
    if cost_dist == "uniform":
        return {name: rng.uniform(low, high) for name in names}
    if cost_param <= 0:
        raise GraphError(f"cost_param must be positive, got {cost_param}")
    if low <= 0:
        raise GraphError(
            f"{cost_dist} costs need a positive anchor, got low={low}"
        )
    if cost_dist == "pareto":
        return {name: low * rng.paretovariate(cost_param) for name in names}
    return {name: low * rng.lognormvariate(0.0, cost_param) for name in names}


def _uniform_costs(
    names: Sequence[str],
    rng: random.Random,
    cost_range: Tuple[float, float],
) -> Dict[str, float]:
    return draw_costs(names, rng, cost_range, cost_dist="uniform")


def ring_graph(
    count: int,
    rng: Optional[random.Random] = None,
    cost_range: Tuple[float, float] = (1.0, 10.0),
) -> ASGraph:
    """A cycle of ``count`` nodes (the minimal biconnected family)."""
    if count < 3:
        raise GraphError("a ring needs at least 3 nodes")
    rng = rng or random.Random(0)
    names = node_names(count)
    costs = _uniform_costs(names, rng, cost_range)
    edges = [(names[i], names[(i + 1) % count]) for i in range(count)]
    return ASGraph(costs, edges)


def wheel_graph(
    count: int,
    rng: Optional[random.Random] = None,
    cost_range: Tuple[float, float] = (1.0, 10.0),
) -> ASGraph:
    """A hub connected to every rim node of an (count-1)-ring."""
    if count < 4:
        raise GraphError("a wheel needs at least 4 nodes")
    rng = rng or random.Random(0)
    names = node_names(count)
    hub, rim = names[0], names[1:]
    costs = _uniform_costs(names, rng, cost_range)
    edges = [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    edges.extend((hub, spoke) for spoke in rim)
    return ASGraph(costs, edges)


def complete_graph(
    count: int,
    rng: Optional[random.Random] = None,
    cost_range: Tuple[float, float] = (1.0, 10.0),
) -> ASGraph:
    """The fully connected graph (every pair adjacent)."""
    if count < 3:
        raise GraphError("a complete graph needs at least 3 nodes")
    rng = rng or random.Random(0)
    names = node_names(count)
    costs = _uniform_costs(names, rng, cost_range)
    edges = [
        (names[i], names[j])
        for i in range(count)
        for j in range(i + 1, count)
    ]
    return ASGraph(costs, edges)


def random_biconnected_graph(
    count: int,
    rng: Optional[random.Random] = None,
    extra_edge_prob: float = 0.25,
    cost_range: Tuple[float, float] = (1.0, 10.0),
    cost_dist: str = "uniform",
    cost_param: float = 2.5,
) -> ASGraph:
    """A random biconnected AS graph.

    Construction: a Hamiltonian cycle over a shuffled node order
    (guaranteeing biconnectivity), then each non-cycle pair is added
    independently with probability ``extra_edge_prob``.

    Parameters
    ----------
    rng:
        Seeded generator; the same seed reproduces the same graph.
    cost_dist, cost_param:
        Transit-cost distribution (see :func:`draw_costs`); the default
        keeps the seed repository's uniform draw bit-for-bit.
    """
    if count < 3:
        raise GraphError("need at least 3 nodes for biconnectivity")
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise GraphError("extra_edge_prob must lie in [0, 1]")
    rng = rng or random.Random(0)
    names = node_names(count)
    costs = draw_costs(
        names, rng, cost_range, cost_dist=cost_dist, cost_param=cost_param
    )

    order = list(names)
    rng.shuffle(order)
    cycle_edges = {
        frozenset((order[i], order[(i + 1) % count])) for i in range(count)
    }
    edges = [tuple(sorted(e)) for e in cycle_edges]
    for i in range(count):
        for j in range(i + 1, count):
            pair = frozenset((names[i], names[j]))
            if pair in cycle_edges:
                continue
            if rng.random() < extra_edge_prob:
                edges.append((names[i], names[j]))
    graph = ASGraph(costs, sorted(edges))
    assert graph.is_biconnected()
    return graph
