"""Workload generators: topologies and traffic matrices."""

from .topologies import (
    COST_DISTRIBUTIONS,
    complete_graph,
    draw_costs,
    figure1_graph,
    node_names,
    random_biconnected_graph,
    ring_graph,
    wheel_graph,
)
from .traffic import (
    MASS_DISTRIBUTIONS,
    VOLUME_DISTRIBUTIONS,
    gravity,
    hotspot,
    random_pairs,
    uniform_all_pairs,
)

__all__ = [
    "COST_DISTRIBUTIONS",
    "MASS_DISTRIBUTIONS",
    "VOLUME_DISTRIBUTIONS",
    "complete_graph",
    "draw_costs",
    "figure1_graph",
    "gravity",
    "hotspot",
    "node_names",
    "random_biconnected_graph",
    "random_pairs",
    "ring_graph",
    "uniform_all_pairs",
    "wheel_graph",
]
