"""Workload generators: topologies and traffic matrices."""

from .topologies import (
    complete_graph,
    figure1_graph,
    node_names,
    random_biconnected_graph,
    ring_graph,
    wheel_graph,
)
from .traffic import gravity, hotspot, random_pairs, uniform_all_pairs

__all__ = [
    "complete_graph",
    "figure1_graph",
    "gravity",
    "hotspot",
    "node_names",
    "random_biconnected_graph",
    "random_pairs",
    "ring_graph",
    "uniform_all_pairs",
    "wheel_graph",
]
