"""Traffic-matrix generators for the execution phase.

Volume models
-------------
``random_pairs`` and ``gravity`` support heavy-tailed volume options in
addition to the uniform defaults, because real interdomain traffic is
famously skewed (a few elephant flows carry most bytes):

* ``"uniform"`` — volumes drawn uniformly from ``volume_range``;
* ``"pareto"`` — volumes ``low * Pareto(alpha)``: a continuous heavy
  tail whose weight grows as ``alpha`` falls toward 1;
* ``"zipf"`` (``random_pairs`` only) — the i-th drawn flow carries
  ``high / i**alpha``: the literal rank-size law, deterministic given
  the pair sequence.

All generators consume only the supplied ``rng``, so a seed fully
determines the matrix.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import MechanismError
from ..routing.graph import ASGraph, NodeId

TrafficMatrix = Dict[Tuple[NodeId, NodeId], float]

#: Volume distributions accepted by :func:`random_pairs`.
VOLUME_DISTRIBUTIONS = ("uniform", "pareto", "zipf")
#: Mass distributions accepted by :func:`gravity`.
MASS_DISTRIBUTIONS = ("uniform", "pareto")


def _require_tail_param(name: str, value: float) -> None:
    if value <= 0:
        raise MechanismError(f"{name} must be positive, got {value}")


def uniform_all_pairs(graph: ASGraph, volume: float = 1.0) -> TrafficMatrix:
    """Every ordered pair exchanges the same volume."""
    if volume < 0:
        raise MechanismError("volume must be non-negative")
    return {
        (source, destination): volume
        for source in graph.nodes
        for destination in graph.nodes
        if source != destination
    }


def random_pairs(
    graph: ASGraph,
    rng: random.Random,
    flow_count: int,
    volume_range: Tuple[float, float] = (1.0, 5.0),
    volume_dist: str = "uniform",
    volume_param: float = 1.5,
) -> TrafficMatrix:
    """``flow_count`` random ordered pairs with random volumes.

    Repeated picks of the same pair accumulate volume.

    Parameters
    ----------
    volume_dist:
        ``"uniform"`` (the default, volumes in ``volume_range``),
        ``"pareto"`` (``low * Pareto(volume_param)``), or ``"zipf"``
        (the i-th flow carries ``high / i**volume_param``).
    volume_param:
        Tail exponent ``alpha`` for the heavy-tailed options.
    """
    if flow_count < 0:
        raise MechanismError("flow_count must be non-negative")
    low, high = volume_range
    if low < 0 or high < low:
        raise MechanismError(f"invalid volume range {volume_range}")
    if volume_dist not in VOLUME_DISTRIBUTIONS:
        raise MechanismError(
            f"unknown volume_dist {volume_dist!r}; "
            f"expected one of {VOLUME_DISTRIBUTIONS}"
        )
    if volume_dist != "uniform":
        _require_tail_param("volume_param", volume_param)
        if volume_dist == "pareto" and low <= 0:
            raise MechanismError("pareto volumes need a positive lower bound")
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise MechanismError("need at least two nodes for traffic")
    traffic: TrafficMatrix = {}
    for rank in range(1, flow_count + 1):
        source, destination = rng.sample(nodes, 2)
        if volume_dist == "uniform":
            volume = rng.uniform(low, high)
        elif volume_dist == "pareto":
            volume = low * rng.paretovariate(volume_param)
        else:  # zipf: rank-size law over the draw order
            volume = high / rank**volume_param
        traffic[(source, destination)] = traffic.get(
            (source, destination), 0.0
        ) + volume
    return traffic


def hotspot(
    graph: ASGraph,
    destination: NodeId,
    volume: float = 1.0,
) -> TrafficMatrix:
    """Everyone sends to one popular destination (CDN-like)."""
    if destination not in graph:
        raise MechanismError(f"unknown destination {destination!r}")
    return {
        (source, destination): volume
        for source in graph.nodes
        if source != destination
    }


def gravity(
    graph: ASGraph,
    rng: random.Random,
    total_volume: float = 100.0,
    mass_dist: str = "uniform",
    mass_param: float = 1.5,
) -> TrafficMatrix:
    """A gravity model: volume proportional to node-mass products.

    The matrix is normalised so all flows sum to ``total_volume``
    regardless of the mass distribution (mass conservation).

    Parameters
    ----------
    mass_dist:
        ``"uniform"`` draws masses from ``U(0.5, 2.0)`` (the default);
        ``"pareto"`` draws ``Pareto(mass_param)`` masses, concentrating
        traffic on a few heavy nodes.
    """
    if total_volume < 0:
        raise MechanismError("total_volume must be non-negative")
    if mass_dist not in MASS_DISTRIBUTIONS:
        raise MechanismError(
            f"unknown mass_dist {mass_dist!r}; "
            f"expected one of {MASS_DISTRIBUTIONS}"
        )
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise MechanismError("need at least two nodes for traffic")
    if mass_dist == "uniform":
        masses = {node: rng.uniform(0.5, 2.0) for node in nodes}
    else:
        _require_tail_param("mass_param", mass_param)
        masses = {node: rng.paretovariate(mass_param) for node in nodes}
    raw: TrafficMatrix = {}
    for source in nodes:
        for destination in nodes:
            if source != destination:
                raw[(source, destination)] = masses[source] * masses[destination]
    scale = total_volume / sum(raw.values())
    return {pair: volume * scale for pair, volume in raw.items()}
