"""Traffic-matrix generators for the execution phase."""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import MechanismError
from ..routing.graph import ASGraph, NodeId

TrafficMatrix = Dict[Tuple[NodeId, NodeId], float]


def uniform_all_pairs(graph: ASGraph, volume: float = 1.0) -> TrafficMatrix:
    """Every ordered pair exchanges the same volume."""
    if volume < 0:
        raise MechanismError("volume must be non-negative")
    return {
        (source, destination): volume
        for source in graph.nodes
        for destination in graph.nodes
        if source != destination
    }


def random_pairs(
    graph: ASGraph,
    rng: random.Random,
    flow_count: int,
    volume_range: Tuple[float, float] = (1.0, 5.0),
) -> TrafficMatrix:
    """``flow_count`` random ordered pairs with random volumes.

    Repeated picks of the same pair accumulate volume.
    """
    if flow_count < 0:
        raise MechanismError("flow_count must be non-negative")
    low, high = volume_range
    if low < 0 or high < low:
        raise MechanismError(f"invalid volume range {volume_range}")
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise MechanismError("need at least two nodes for traffic")
    traffic: TrafficMatrix = {}
    for _ in range(flow_count):
        source, destination = rng.sample(nodes, 2)
        traffic[(source, destination)] = traffic.get(
            (source, destination), 0.0
        ) + rng.uniform(low, high)
    return traffic


def hotspot(
    graph: ASGraph,
    destination: NodeId,
    volume: float = 1.0,
) -> TrafficMatrix:
    """Everyone sends to one popular destination (CDN-like)."""
    if destination not in graph:
        raise MechanismError(f"unknown destination {destination!r}")
    return {
        (source, destination): volume
        for source in graph.nodes
        if source != destination
    }


def gravity(
    graph: ASGraph,
    rng: random.Random,
    total_volume: float = 100.0,
) -> TrafficMatrix:
    """A gravity model: volume proportional to node-mass products.

    Masses are drawn uniformly, and the matrix is normalised so all
    flows sum to ``total_volume``.
    """
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise MechanismError("need at least two nodes for traffic")
    masses = {node: rng.uniform(0.5, 2.0) for node in nodes}
    raw: TrafficMatrix = {}
    for source in nodes:
        for destination in nodes:
            if source != destination:
                raw[(source, destination)] = masses[source] * masses[destination]
    scale = total_volume / sum(raw.values())
    return {pair: volume * scale for pair, volume in raw.items()}
