"""Counters for protocol overhead accounting.

The paper warns that phase checkpoints and checker redundancy add
computational and communication complexity (Section 3.9); experiment E7
quantifies exactly that, and these counters are its instrumentation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

NodeId = Hashable


@dataclass
class NodeMetrics:
    """Per-node counters."""

    messages_sent: int = 0
    messages_received: int = 0
    payload_units_sent: int = 0
    computations: int = 0
    checker_computations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used in reports."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "payload_units_sent": self.payload_units_sent,
            "computations": self.computations,
            "checker_computations": self.checker_computations,
        }


class MetricsRegistry:
    """Aggregates :class:`NodeMetrics` across a simulation."""

    def __init__(self) -> None:
        self._per_node: Dict[NodeId, NodeMetrics] = defaultdict(NodeMetrics)
        self.events_processed: int = 0
        self._by_kind: Dict[str, int] = defaultdict(int)
        #: Messages the pre-coalescing checker-copy path would have
        #: sent: one per forwarded copy per checker.  The coalesced
        #: implementation bundles a whole delivery batch's copies into
        #: one multicast, so the actual checker-copy message count must
        #: stay strictly below this on any batched run — the per-batch
        #: accounting gate of the checked-tier benchmarks.
        self.uncoalesced_copy_sends: int = 0

    def node(self, node_id: NodeId) -> NodeMetrics:
        """The (auto-created) counters for one node."""
        return self._per_node[node_id]

    @property
    def per_node(self) -> Mapping[NodeId, NodeMetrics]:
        """Read-only view of all node counters."""
        return dict(self._per_node)

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------

    def record_send(
        self,
        node_id: NodeId,
        payload_units: int = 1,
        kind: Optional[str] = None,
    ) -> None:
        """Count one outgoing message."""
        metrics = self._per_node[node_id]
        metrics.messages_sent += 1
        metrics.payload_units_sent += payload_units
        if kind is not None:
            self._by_kind[kind] += 1

    def record_uncoalesced_copies(self, count: int) -> None:
        """Count messages the per-copy checker path would have sent."""
        self.uncoalesced_copy_sends += count

    def messages_of_kind(self, kind: str) -> int:
        """Messages sent with this wire kind across all nodes."""
        return self._by_kind[kind]

    def record_receive(self, node_id: NodeId) -> None:
        """Count one delivered message."""
        self._per_node[node_id].messages_received += 1

    def record_computation(self, node_id: NodeId, as_checker: bool = False) -> None:
        """Count one mechanism computation (table recomputation etc.)."""
        metrics = self._per_node[node_id]
        if as_checker:
            metrics.checker_computations += 1
        else:
            metrics.computations += 1

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Messages sent across all nodes."""
        return sum(m.messages_sent for m in self._per_node.values())

    @property
    def total_payload_units(self) -> int:
        """Payload units sent across all nodes."""
        return sum(m.payload_units_sent for m in self._per_node.values())

    @property
    def total_computations(self) -> int:
        """Principal-role computations across all nodes."""
        return sum(m.computations for m in self._per_node.values())

    @property
    def total_checker_computations(self) -> int:
        """Checker-role (redundant) computations across all nodes."""
        return sum(m.checker_computations for m in self._per_node.values())

    def summary(self) -> Dict[str, int]:
        """Aggregate counters used by the overhead benchmarks."""
        return {
            "total_messages": self.total_messages,
            "total_payload_units": self.total_payload_units,
            "total_computations": self.total_computations,
            "total_checker_computations": self.total_checker_computations,
            "events_processed": self.events_processed,
            "uncoalesced_copy_sends": self.uncoalesced_copy_sends,
        }
