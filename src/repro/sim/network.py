"""Static network topology with FIFO links.

The paper (following FPSS and Griffin-Wilfong) assumes a static
network: the node set and link set do not change during a mechanism
run.  Links are bidirectional FIFO channels with a fixed per-link
delay; determinism of the event queue then guarantees per-link FIFO
delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..errors import SimulationError
from .messages import NodeId


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes with a fixed delay."""

    a: NodeId
    b: NodeId
    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise SimulationError(f"self-loop link at {self.a!r}")
        if self.delay <= 0:
            raise SimulationError(f"link delay must be positive, got {self.delay}")

    @property
    def endpoints(self) -> FrozenSet[NodeId]:
        """Both endpoints, orderless."""
        return frozenset((self.a, self.b))


class NetworkTopology:
    """An undirected static topology over registered node ids."""

    def __init__(self) -> None:
        self._nodes: Set[NodeId] = set()
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        self._links: Dict[FrozenSet[NodeId], Link] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: NodeId) -> None:
        """Register a node (idempotent)."""
        if node_id not in self._nodes:
            self._nodes.add(node_id)
            self._adjacency[node_id] = set()

    def add_link(self, a: NodeId, b: NodeId, delay: float = 1.0) -> Link:
        """Connect two registered nodes with a FIFO link."""
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise SimulationError(f"unknown node {endpoint!r}; add it first")
        key = frozenset((a, b))
        if key in self._links:
            raise SimulationError(f"link {a!r}-{b!r} already exists")
        link = Link(a=a, b=b, delay=delay)
        self._links[key] = link
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return link

    # ------------------------------------------------------------------
    # mutation (dynamic topology events)
    # ------------------------------------------------------------------
    #
    # The paper's mechanism run assumes a static network; the dynamic
    # topology engine mutates the topology *between* reconvergence
    # epochs, at network quiescence, never while messages are in
    # flight.

    def remove_link(self, a: NodeId, b: NodeId) -> Link:
        """Disconnect a link (a failure event); returns the old link."""
        key = frozenset((a, b))
        link = self._links.pop(key, None)
        if link is None:
            raise SimulationError(f"no link between {a!r} and {b!r}")
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        return link

    def remove_node(self, node_id: NodeId) -> None:
        """Unregister a node and every link incident to it."""
        if node_id not in self._nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        for neighbor in tuple(self._adjacency[node_id]):
            self.remove_link(node_id, neighbor)
        del self._adjacency[node_id]
        self._nodes.discard(node_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        """All registered node ids."""
        return frozenset(self._nodes)

    @property
    def links(self) -> Tuple[Link, ...]:
        """All links, in deterministic (sorted by repr) order."""
        return tuple(
            self._links[key]
            for key in sorted(self._links, key=lambda k: sorted(map(repr, k)))
        )

    def neighbors(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Neighbours of a node, sorted by repr for determinism."""
        if node_id not in self._nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        return tuple(sorted(self._adjacency[node_id], key=repr))

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        """True if an (a, b) link exists."""
        return frozenset((a, b)) in self._links

    def delay(self, a: NodeId, b: NodeId) -> float:
        """The delay of the (a, b) link."""
        try:
            return self._links[frozenset((a, b))].delay
        except KeyError:
            raise SimulationError(f"no link between {a!r} and {b!r}") from None

    def degree(self, node_id: NodeId) -> int:
        """Number of neighbours (= number of checkers in the faithful
        extension, where every neighbour checks the node)."""
        return len(self._adjacency.get(node_id, ()))

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._nodes, key=repr))

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """True if the topology is a single connected component."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier: List[NodeId] = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], delay: float = 1.0
    ) -> "NetworkTopology":
        """Build a topology from an edge list with uniform delay."""
        topology = cls()
        for a, b in edges:
            topology.add_node(a)
            topology.add_node(b)
            topology.add_link(a, b, delay=delay)
        return topology
