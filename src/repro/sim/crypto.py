"""Simulated message signing for bank channels.

The paper requires that "all communication between the bank and a node
is signed with acknowledgments to ensure communication compatibility of
these messages" (Section 4.2).  Inside the simulation we realise the
same integrity property with HMAC-SHA256 over a canonical rendering of
the payload, under per-node keys held by a registry that models the
pre-existing key distribution the paper assumes.

This is a *substitution* documented in DESIGN.md: real deployments
would use public-key signatures; the property exercised by the code —
that intermediaries cannot undetectably alter or forge bank traffic —
is identical.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any, Dict, Mapping

from ..errors import SignatureError
from .messages import Message, NodeId


def _canonical(payload: Mapping[str, Any]) -> bytes:
    """Deterministic byte rendering of a payload dict."""

    def default(value: Any) -> Any:
        if isinstance(value, (set, frozenset)):
            return sorted(value, key=repr)
        if isinstance(value, tuple):
            return list(value)
        return repr(value)

    return json.dumps(payload, sort_keys=True, default=default).encode("utf-8")


class SigningAuthority:
    """Key registry and HMAC signer for node <-> bank traffic."""

    def __init__(self, secret_seed: str = "repro-bank") -> None:
        self._seed = secret_seed.encode("utf-8")
        self._keys: Dict[NodeId, bytes] = {}

    def register(self, node_id: NodeId) -> None:
        """Derive and store a per-node key (idempotent)."""
        if node_id not in self._keys:
            material = self._seed + repr(node_id).encode("utf-8")
            self._keys[node_id] = hashlib.sha256(material).digest()

    def is_registered(self, node_id: NodeId) -> bool:
        """True if the node holds a key."""
        return node_id in self._keys

    def _key(self, node_id: NodeId) -> bytes:
        try:
            return self._keys[node_id]
        except KeyError:
            raise SignatureError(f"no key registered for node {node_id!r}") from None

    def sign(self, signer: NodeId, message: Message) -> Message:
        """Return a copy of ``message`` carrying the signer's tag.

        The tag covers the message kind, the author identity, and the
        payload — so neither content nor attribution can be altered in
        transit without detection.
        """
        key = self._key(signer)
        body = _canonical(
            {"kind": message.kind, "author": repr(message.author), **dict(message.payload)}
        )
        tag = hmac.new(key, body, hashlib.sha256).hexdigest()
        return Message(
            src=message.src,
            dst=message.dst,
            kind=message.kind,
            payload=message.payload,
            author=message.author,
            msg_id=message.msg_id,
            signature=tag,
        )

    def verify(self, signer: NodeId, message: Message) -> bool:
        """Check the signature allegedly produced by ``signer``."""
        if message.signature is None:
            return False
        key = self._key(signer)
        body = _canonical(
            {"kind": message.kind, "author": repr(message.author), **dict(message.payload)}
        )
        expected = hmac.new(key, body, hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, message.signature)

    def require_valid(self, signer: NodeId, message: Message) -> None:
        """Raise :class:`SignatureError` unless the signature verifies."""
        if not self.verify(signer, message):
            raise SignatureError(
                f"message {message} failed signature verification for {signer!r}"
            )


def stable_hash(value: Any) -> str:
    """A deterministic SHA-256 hex digest of an arbitrary value.

    The bank compares *hashes* of routing and pricing tables rather
    than the tables themselves ("a hash of the entire table is
    sufficient", BANK1).  This helper provides that digest for any
    nested structure of dicts, tuples, sets, and scalars.
    """

    def canonical(v: Any) -> Any:
        if isinstance(v, dict):
            return ["dict", sorted((repr(k), canonical(x)) for k, x in v.items())]
        if isinstance(v, (list, tuple)):
            return ["seq", [canonical(x) for x in v]]
        if isinstance(v, (set, frozenset)):
            return ["set", sorted(repr(canonical(x)) for x in v)]
        if (
            isinstance(v, (int, float))
            and not isinstance(v, bool)
            and float(v) == int(v)
        ):
            # Normalise 2.0 vs 2 so semantically equal tables hash equal.
            return ["num", repr(int(v))]
        return ["atom", repr(v)]

    encoded = json.dumps(canonical(value), sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
