"""Protocol node base class.

A :class:`ProtocolNode` is an event-driven process: the simulator calls
:meth:`ProtocolNode.start` once at time zero and :meth:`deliver` for
each arriving message.  Handlers are discovered by naming convention:
a message of kind ``"rt-update"`` is dispatched to ``on_rt_update``.

Two filter hooks, :meth:`outbound` and :meth:`inbound`, exist so that
failure adapters (:mod:`repro.sim.failures`) and rational manipulation
strategies (:mod:`repro.faithful.manipulations`) can intercept traffic
without rewriting protocol logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from ..errors import ProtocolError, SimulationError
from .messages import Message, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator


class ProtocolNode:
    """Base class for all simulated protocol participants."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self._sim: Optional["Simulator"] = None
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        #: True while a delivery batch is being applied; handlers that
        #: maintain derived state read this to defer recomputation to
        #: the :meth:`flush_batch` boundary.
        self._in_batch = False

    # ------------------------------------------------------------------
    # simulator wiring
    # ------------------------------------------------------------------

    def attach(self, simulator: "Simulator") -> None:
        """Called by the simulator when the node is registered."""
        if self._sim is not None:
            raise SimulationError(f"node {self.node_id!r} already attached")
        self._sim = simulator

    @property
    def sim(self) -> "Simulator":
        """The owning simulator (raises if not yet attached)."""
        if self._sim is None:
            raise SimulationError(f"node {self.node_id!r} is not attached")
        return self._sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    @property
    def neighbors(self) -> Tuple[NodeId, ...]:
        """This node's neighbours in the topology."""
        return self.sim.topology.neighbors(self.node_id)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Invoked once at simulation start; override to kick off."""

    def outbound(self, message: Message) -> Optional[Message]:
        """Filter applied to every message this node sends.

        Return the (possibly replaced) message, or None to drop it.
        The faithful base implementation is the identity.
        """
        return message

    def inbound(self, message: Message) -> Optional[Message]:
        """Filter applied to every message delivered to this node."""
        return message

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, dst: NodeId, kind: str, **payload: Any) -> Optional[Message]:
        """Construct and transmit a fresh message to ``dst``."""
        message = Message(src=self.node_id, dst=dst, kind=kind, payload=payload)
        return self.send_message(message)

    def send_message(self, message: Message) -> Optional[Message]:
        """Transmit a pre-built message through the outbound filter."""
        filtered = self.outbound(message)
        if filtered is None:
            self.sim.note_drop(self.node_id, message, reason="outbound-filter")
            return None
        self.sim.transmit(filtered)
        return filtered

    def forward(self, message: Message, dst: NodeId) -> Optional[Message]:
        """Relay a received message to ``dst`` (message-passing action)."""
        return self.send_message(message.forwarded(self.node_id, dst))

    def broadcast(self, kind: str, **payload: Any) -> None:
        """Send the same fresh message to every neighbour."""
        self.multicast(self.neighbors, kind, **payload)

    def multicast(
        self, targets, kind: str, size_hint: Optional[int] = None, **payload: Any
    ) -> None:
        """Send one payload to several nodes, sizing it only once.

        The copies share one payload dict and one computed
        :attr:`Message.size` — broadcast vectors can hold thousands of
        rows, so per-copy re-counting would dominate the send path.
        ``size_hint`` lets a caller that already knows the payload's
        scalar count (e.g. from encoding it) skip the counting walk.
        """
        size = size_hint
        for dst in targets:
            message = Message(src=self.node_id, dst=dst, kind=kind, payload=payload)
            if size is not None:
                message.seed_size(size)
            self.send_message(message)
            if size is None:
                size = message.size

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Entry point used by the simulator for an arriving message."""
        filtered = self.inbound(message)
        if filtered is None:
            self.sim.note_drop(self.node_id, message, reason="inbound-filter")
            return
        self.dispatch(filtered)

    def deliver_batch(self, messages: Tuple[Message, ...]) -> None:
        """Process all messages arriving at one simulated instant.

        Invoked by the simulator in batched-delivery mode with the
        batch in send order.  Each message replays the per-message path
        (metrics, trace, inbound filter, dispatch, in that order per
        message) with :attr:`_in_batch` set, so plain nodes behave
        identically in both modes; the :meth:`flush_batch` hook then
        runs exactly once at the batch boundary.  Protocol nodes that
        maintain derived state override *the hook*, not this method:
        their handlers only ingest while ``_in_batch`` is set and the
        hook settles the deferred recomputation.
        """
        self._in_batch = True
        try:
            for message in messages:
                self.sim.deliver_now(message)
        finally:
            self._in_batch = False
        self.flush_batch()

    def flush_batch(self) -> None:
        """Batch-boundary hook; the base implementation does nothing.

        Runs once after every delivery batch (and never in unbatched
        mode, where each message is its own event).  Override to settle
        state whose recomputation the handlers deferred.
        """

    def dispatch(self, message: Message) -> None:
        """Route a message to its ``on_<kind>`` handler."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            handler_name = "on_" + message.kind.replace("-", "_")
            handler = getattr(self, handler_name, None)
            if handler is None:
                raise ProtocolError(
                    f"node {self.node_id!r} has no handler {handler_name!r} "
                    f"for message kind {message.kind!r}"
                )
            self._handlers[message.kind] = handler
        handler(message)

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> None:
        """Schedule a local (internal-action) callback after ``delay``."""
        self.sim.schedule_local(self.node_id, delay, callback, label=label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.node_id!r})"
