"""Execution traces: a queryable log of everything the simulator did.

Traces serve two purposes: debugging, and *evidence*.  The faithfulness
experiments compare what a deviating node actually emitted against what
the suggested specification would have emitted, and the trace is the
ground truth for that comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .messages import Message, NodeId


class TraceKind(enum.Enum):
    """Categories of trace entries."""

    SEND = "send"
    DELIVER = "deliver"
    DROP = "drop"
    COMPUTE = "compute"
    STATE = "state"
    DETECT = "detect"
    PHASE = "phase"
    PACKET = "packet"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator occurrence."""

    time: float
    kind: TraceKind
    node: Optional[NodeId]
    message: Optional[Message] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        msg = f" {self.message}" if self.message else ""
        return f"[{self.time:8.3f}] {self.kind.value:8s} {self.node}{msg} {self.detail}"


class Trace:
    """An append-only log of :class:`TraceEvent` entries.

    Recording can be disabled wholesale (``enabled=False``) for large
    benchmark sweeps where only the metrics counters matter.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(
        self,
        time: float,
        kind: TraceKind,
        node: Optional[NodeId],
        message: Optional[Message] = None,
        **detail: Any,
    ) -> None:
        """Append one event (no-op when disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=time, kind=kind, node=node, message=message, detail=detail)
        )

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def filter(
        self,
        kind: Optional[TraceKind] = None,
        node: Optional[NodeId] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all the given criteria."""
        result = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if node is not None and event.node != node:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def sends(self, node: Optional[NodeId] = None) -> List[TraceEvent]:
        """All SEND events, optionally for one node."""
        return self.filter(kind=TraceKind.SEND, node=node)

    def deliveries(self, node: Optional[NodeId] = None) -> List[TraceEvent]:
        """All DELIVER events, optionally for one node."""
        return self.filter(kind=TraceKind.DELIVER, node=node)

    def detections(self) -> List[TraceEvent]:
        """All DETECT events (bank catching a deviation)."""
        return self.filter(kind=TraceKind.DETECT)

    def messages_by_kind(self) -> Dict[str, int]:
        """Histogram of sent message kinds."""
        histogram: Dict[str, int] = {}
        for event in self.sends():
            assert event.message is not None
            histogram[event.message.kind] = histogram.get(event.message.kind, 0) + 1
        return histogram

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events.clear()
