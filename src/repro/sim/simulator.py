"""The discrete-event simulator.

Couples a :class:`~repro.sim.network.NetworkTopology`, a set of
:class:`~repro.sim.node.ProtocolNode` processes, an event queue, a
trace, and a metrics registry.  ``run_until_quiescent`` drives the
system to a fixed point — the "network quiescence point" at which the
paper's bank performs its BANK1/BANK2 checks.

Batched delivery
----------------
By default the simulator coalesces every message arriving at one node
at one simulated instant into a single delivery event
(:class:`~repro.sim.events.DeliveryInbox`).  Messages are still handed
to the node one by one in send order — per-link FIFO is preserved — but
the node learns the batch boundary through
:meth:`~repro.sim.node.ProtocolNode.deliver_batch`, which protocol
implementations exploit to recompute derived state once per batch
instead of once per message (see :mod:`repro.routing.fpss`).  Passing
``batch_delivery=False`` restores the seed's one-event-per-message
behaviour; both modes are deterministic and converge to the same fixed
point.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..errors import ConvergenceError, SimulationError
from ..obs.events import BUS
from ..obs.trace import emit_counters, span
from .events import DeliveryInbox, EventQueue
from .messages import Message, NodeId
from .metrics import MetricsRegistry
from .network import NetworkTopology
from .node import ProtocolNode
from .trace import Trace, TraceKind


class Simulator:
    """Deterministic discrete-event simulation of a node network.

    Parameters
    ----------
    topology:
        The static network.  Messages may only flow along its links,
        except for nodes registered as *well-known* (the bank), which
        every node can reach directly — modelling the paper's signed
        out-of-band bank channel.
    trace_enabled:
        Record a full event trace (disable for large sweeps).
    batch_delivery:
        Coalesce same-instant deliveries to one node into one event
        (the default).  ``False`` restores per-message delivery events.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        trace_enabled: bool = True,
        batch_delivery: bool = True,
    ) -> None:
        self.topology = topology
        self.queue = EventQueue()
        self.trace = Trace(enabled=trace_enabled)
        self.metrics = MetricsRegistry()
        self.batch_delivery = batch_delivery
        self._inbox = DeliveryInbox()
        self._nodes: Dict[NodeId, ProtocolNode] = {}
        self._well_known: set = set()
        self._now: float = 0.0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_node(self, node: ProtocolNode, well_known: bool = False) -> None:
        """Register a protocol node occupying a topology vertex.

        ``well_known=True`` marks the node as reachable by every other
        node without a topology link (used for the bank; the paper
        assumes signed communication between every node and the bank).
        """
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        if node.node_id not in self.topology and not well_known:
            raise SimulationError(
                f"node {node.node_id!r} is not a vertex of the topology"
            )
        self._nodes[node.node_id] = node
        if well_known:
            self._well_known.add(node.node_id)
        node.attach(self)

    def node(self, node_id: NodeId) -> ProtocolNode:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id!r}") from None

    @property
    def nodes(self) -> Dict[NodeId, ProtocolNode]:
        """All registered nodes keyed by id (copy)."""
        return dict(self._nodes)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def _link_delay(self, src: NodeId, dst: NodeId) -> float:
        if src in self._well_known or dst in self._well_known:
            return 1.0
        return self.topology.delay(src, dst)

    def _check_reachable(self, src: NodeId, dst: NodeId) -> None:
        if src in self._well_known or dst in self._well_known:
            return
        if not self.topology.has_link(src, dst):
            raise SimulationError(
                f"{src!r} cannot send to non-neighbour {dst!r}; "
                "only the bank is reachable without a link"
            )

    def transmit(self, message: Message) -> None:
        """Accept a message from a node and schedule its delivery.

        In batched mode the message joins the receiver's inbox slot for
        its arrival instant; only the slot's first message costs a
        queue event.
        """
        self._check_reachable(message.src, message.dst)
        if message.dst not in self._nodes:
            raise SimulationError(f"message to unknown node {message.dst!r}")
        self.metrics.record_send(
            message.src, payload_units=message.size, kind=message.kind
        )
        self.trace.record(self._now, TraceKind.SEND, message.src, message)
        delay = self._link_delay(message.src, message.dst)
        arrival = self._now + delay
        if self.batch_delivery:
            if self._inbox.add(arrival, message.dst, message):
                self.queue.schedule(
                    arrival,
                    lambda time=arrival, dst=message.dst: self._deliver_batch(
                        time, dst
                    ),
                    label=f"deliver-batch:->{message.dst}",
                )
        else:
            self.queue.schedule(
                arrival,
                lambda: self._deliver(message),
                label=f"deliver:{message.kind}:{message.src}->{message.dst}",
            )

    def _deliver(self, message: Message) -> None:
        self.metrics.record_receive(message.dst)
        self.trace.record(self._now, TraceKind.DELIVER, message.dst, message)
        self._nodes[message.dst].deliver(message)

    def _deliver_batch(self, time: float, dst: NodeId) -> None:
        messages = self._inbox.collect(time, dst)
        self._nodes[dst].deliver_batch(messages)

    def deliver_now(self, message: Message) -> None:
        """Account for and process one message of a delivery batch.

        Called back by :meth:`ProtocolNode.deliver_batch` loops so that
        per-message metrics and trace entries interleave with handler
        effects exactly as they do in unbatched mode.
        """
        self._deliver(message)

    def note_drop(self, node_id: NodeId, message: Message, reason: str) -> None:
        """Record that a filter suppressed a message."""
        self.trace.record(self._now, TraceKind.DROP, node_id, message, reason=reason)

    def schedule_local(
        self, node_id: NodeId, delay: float, callback, label: str = ""
    ) -> None:
        """Schedule a node-local callback (internal action)."""
        if delay < 0:
            raise SimulationError("negative delay")
        self.queue.schedule(self._now + delay, callback, label=f"{node_id}:{label}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def start(self, nodes: Optional[Iterable[NodeId]] = None) -> None:
        """Invoke ``start()`` on nodes (all of them by default).

        Safe to call again for later phases; each call simply schedules
        another round of start hooks at the current time.
        """
        targets = list(nodes) if nodes is not None else sorted(self._nodes, key=repr)
        for node_id in targets:
            node = self.node(node_id)
            self.queue.schedule(self._now, node.start, label=f"start:{node_id}")

    def step(self) -> bool:
        """Dispatch one event; returns False if the queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = event.time
        self.metrics.events_processed += 1
        if BUS.verbose:
            # Per-event dispatch spans are opt-in even with a sink
            # attached: one pair of records per event is debugging
            # granularity, not feed granularity.
            with span("sim.dispatch", sim_time=event.time, label=event.label):
                event.callback()
            return True
        event.callback()
        return True

    def run_until_quiescent(self, max_events: int = 1_000_000) -> int:
        """Dispatch events until none remain; returns events processed.

        When a telemetry sink is attached, the drain is wrapped in a
        ``sim.quiesce`` span and followed by one ``sim.metrics``
        counter record holding the *delta* of the metrics summary over
        this drain (a simulator quiesces several times per run — once
        per phase — so deltas, not cumulative totals, are what sum
        correctly per scenario).

        Raises
        ------
        ConvergenceError
            If the budget is exhausted, which for a static-topology
            Bellman-Ford style protocol indicates a livelock bug or a
            deviation that prevents convergence.
        """
        if not BUS.enabled:
            return self._drain(max_events)
        before = self.metrics.summary()
        with span("sim.quiesce", sim_time=self._now) as quiesce:
            processed = self._drain(max_events)
            quiesce.note(events=processed, sim_time=self._now)
        after = self.metrics.summary()
        emit_counters(
            "sim.metrics",
            {key: after[key] - before.get(key, 0) for key in after},
            sim_time=self._now,
        )
        return processed

    def _drain(self, max_events: int) -> int:
        processed = 0
        while self.queue:
            if processed >= max_events:
                raise ConvergenceError(
                    f"simulation did not quiesce within {max_events} events"
                )
            self.step()
            processed += 1
        return processed

    def is_quiescent(self) -> bool:
        """True when no events are pending."""
        return not self.queue
