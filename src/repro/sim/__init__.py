"""Discrete-event network simulation substrate.

Provides the deterministic event queue, static FIFO-link topologies,
protocol node processes, failure-model adapters (including rational
manipulation, Section 3), simulated signing for bank channels, traces,
and overhead metrics.
"""

from .crypto import SigningAuthority, stable_hash
from .events import Event, EventQueue
from .failures import (
    ByzantineAdapter,
    CrashAdapter,
    FailstopAdapter,
    FailureAdapter,
    FailureModel,
    OmissionAdapter,
    RationalAdapter,
)
from .messages import Message, NodeId
from .metrics import MetricsRegistry, NodeMetrics
from .network import Link, NetworkTopology
from .node import ProtocolNode
from .simulator import Simulator
from .trace import Trace, TraceEvent, TraceKind

__all__ = [
    "ByzantineAdapter",
    "CrashAdapter",
    "Event",
    "EventQueue",
    "FailstopAdapter",
    "FailureAdapter",
    "FailureModel",
    "Link",
    "Message",
    "MetricsRegistry",
    "NetworkTopology",
    "NodeId",
    "NodeMetrics",
    "OmissionAdapter",
    "ProtocolNode",
    "RationalAdapter",
    "SigningAuthority",
    "Simulator",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "stable_hash",
]
