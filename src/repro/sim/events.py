"""Event queue and delivery batching for the discrete-event simulator.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, making every simulation fully deterministic for
a given schedule of insertions.

:class:`DeliveryInbox` is the coalescing structure behind the
simulator's batched delivery mode: all messages arriving at one node at
one simulated instant are accumulated under a single ``(time, node)``
key and dispatched as one event.  The receiving node's
:meth:`~repro.sim.node.ProtocolNode.flush_batch` hook then runs exactly
once per batch, so a flooding round costs each receiver one
recomputation instead of one per message — and, in the faithful
extension, one shared mirror replay per principal batch (see
``docs/architecture.md``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from ..errors import SimulationError


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is by (time, seq) only; the callback itself is excluded
    from comparisons.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._popped = 0

    def schedule(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Insert a callback to fire at simulated ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        self._popped += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """The time of the earliest pending event, or None if empty."""
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._heap)

    @property
    def dispatched(self) -> int:
        """Number of events popped so far."""
        return self._popped

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop events until the queue is empty (used in tests)."""
        while self._heap:
            yield self.pop()


#: One pending-delivery slot: simulated arrival instant plus receiver.
InboxKey = Tuple[float, Hashable]


class DeliveryInbox:
    """Same-instant deliveries to one node, coalesced into one batch.

    The simulator's batched delivery mode appends every in-flight
    message to the inbox keyed by ``(arrival time, destination)``.  The
    first message of a slot schedules exactly one queue event; when that
    event fires, :meth:`collect` removes and returns the whole batch in
    send (``seq``) order, preserving per-link FIFO within the batch.
    """

    def __init__(self) -> None:
        self._slots: Dict[InboxKey, List[Any]] = {}

    def add(self, time: float, dst: Hashable, message: Any) -> bool:
        """File a message; True if this opened a new (unscheduled) slot."""
        key = (time, dst)
        slot = self._slots.get(key)
        if slot is None:
            self._slots[key] = [message]
            return True
        slot.append(message)
        return False

    def collect(self, time: float, dst: Hashable) -> Tuple[Any, ...]:
        """Remove and return one slot's batch (raises if absent)."""
        try:
            return tuple(self._slots.pop((time, dst)))
        except KeyError:
            raise SimulationError(
                f"no pending delivery batch for {dst!r} at t={time}"
            ) from None

    @property
    def pending(self) -> int:
        """Messages filed but not yet collected."""
        return sum(len(slot) for slot in self._slots.values())

    def __bool__(self) -> bool:
        return bool(self._slots)
