"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, making every simulation fully deterministic for
a given schedule of insertions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from ..errors import SimulationError


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is by (time, seq) only; the callback itself is excluded
    from comparisons.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._popped = 0

    def schedule(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Insert a callback to fire at simulated ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        self._popped += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """The time of the earliest pending event, or None if empty."""
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._heap)

    @property
    def dispatched(self) -> int:
        """Number of events popped so far."""
        return self._popped

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop events until the queue is empty (used in tests)."""
        while self._heap:
            yield self.pop()
