"""Messages exchanged between protocol nodes.

A message is an immutable envelope: sender, receiver, a ``kind`` tag
that selects the handler on the receiving node, and a payload dict.
Tampering (for Byzantine/rational adapters) is modelled by building a
*new* message via :meth:`Message.altered`; originals are never mutated,
so traces always show both what was sent and what was delivered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Mapping, Optional

NodeId = Hashable
"""Node identifiers are arbitrary hashable labels (strings in practice)."""

_msg_counter = itertools.count(1)


def _freeze(value: Any) -> Any:
    """Recursively convert payload values to hashable/immutable forms."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Message:
    """An immutable protocol message.

    Attributes
    ----------
    src:
        Originating node of this hop (not necessarily the original
        author if the message is a forwarded copy).
    dst:
        Receiving node of this hop.
    kind:
        Handler-selector string, e.g. ``"rt-update"``.
    payload:
        Message body.  Treated as immutable by convention.
    author:
        The node that created the information in this message; equals
        ``src`` unless this is a forwarded copy.
    msg_id:
        Unique id assigned at construction; forwarded copies share the
        author's id so checkers can match copies to originals.
    signature:
        Optional signature tag from :mod:`repro.sim.crypto`.
    """

    src: NodeId
    dst: NodeId
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    author: Optional[NodeId] = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    signature: Optional[str] = None

    def __post_init__(self) -> None:
        if self.author is None:
            object.__setattr__(self, "author", self.src)

    def forwarded(self, src: NodeId, dst: NodeId) -> "Message":
        """A copy of this message relayed by ``src`` to ``dst``.

        Keeps the author and ``msg_id`` so receivers can recognise the
        message as a forwarded copy of the original.
        """
        return replace(self, src=src, dst=dst)

    def altered(self, **payload_updates: Any) -> "Message":
        """A tampered copy with payload fields replaced.

        Used by manipulation strategies; the result keeps the original
        ``msg_id`` (a rational node forging content, not identity).
        """
        merged = dict(self.payload)
        merged.update(payload_updates)
        return replace(self, payload=merged)

    def readdressed(self, dst: NodeId) -> "Message":
        """A copy sent to a different destination."""
        return replace(self, dst=dst)

    def content_key(self) -> Hashable:
        """A hashable digest of (kind, author, payload) for comparisons."""
        return (self.kind, self.author, _freeze(dict(self.payload)))

    @property
    def size(self) -> int:
        """Crude size proxy: number of scalar entries in the payload.

        The count is cached per message instance: broadcast vectors can
        hold thousands of rows, and the metrics layer reads ``size`` on
        every transmission.  Derived messages (``altered``,
        ``forwarded``, ...) are new instances, so they never inherit a
        stale cache.  :meth:`seed_size` shares one computed size across
        the identical copies of a broadcast.
        """
        cached = self.__dict__.get("_size_cache")
        if cached is not None:
            return cached
        # Iterative count: broadcast vectors nest thousands of rows and
        # recursion overhead dominated the send path.  Empty containers
        # count as one scalar, as before.
        size = 0
        stack = list(self.payload.values())
        while stack:
            value = stack.pop()
            if isinstance(value, (list, tuple, set, frozenset)):
                if value:
                    stack.extend(value)
                else:
                    size += 1
            elif isinstance(value, dict):
                if value:
                    stack.extend(value.values())
                else:
                    size += 1
            else:
                size += 1
        size = max(1, size)
        object.__setattr__(self, "_size_cache", size)
        return size

    def seed_size(self, size: int) -> None:
        """Pre-populate the :attr:`size` cache (same-payload broadcasts)."""
        object.__setattr__(self, "_size_cache", size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.kind} {self.src}->{self.dst} #{self.msg_id}>"
