"""Dynamic-topology event vocabulary and churn schedules.

The paper's mechanism run assumes a static network, but its
faithfulness claims are stated for a *recomputation* protocol that must
survive network change.  This module supplies the event vocabulary for
exercising that machinery: a :class:`ChurnSchedule` is a deterministic
sequence of reconvergence *epochs*, each a batch of
:class:`ChurnEvent` objects applied synchronously at network
quiescence.

The vocabulary follows the routesim2 exemplar (`link_has_been_updated`
with ``latency == -1`` encoding deletion), adapted to the FPSS cost
model where transit costs live on nodes rather than links:

``cost``
    A node changes its declared transit cost (the link-cost-change of
    link-state simulators, moved to the node that owns the cost).
``link-down`` / ``link-up``
    A link fails / is restored or newly created.
``leave`` / ``join``
    A node departs with all its links / a new node arrives with a set
    of links and a declared cost.

Schedules are either explicit (a spec of events per epoch) or drawn
from :func:`random_churn_schedule`, a seeded generator that keeps every
intermediate graph viable (connected or biconnected, by construction)
so reconvergence is always well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import SimulationError
from ..routing.graph import ASGraph, NodeId

#: The closed event vocabulary, repr-stable for specs and telemetry.
EVENT_KINDS: Tuple[str, ...] = ("cost", "link-down", "link-up", "leave", "join")


@dataclass(frozen=True)
class ChurnEvent:
    """One topology event, validated against the vocabulary.

    Field usage by kind:

    * ``cost``: ``node`` + ``cost`` (the new declared transit cost);
    * ``link-down`` / ``link-up``: ``link`` as an ``(a, b)`` pair;
    * ``leave``: ``node``;
    * ``join``: ``node`` + ``cost`` + ``links`` (the new node's
      attachment points, each an ``(a, b)`` pair containing ``node``).
    """

    kind: str
    node: Optional[NodeId] = None
    link: Optional[Tuple[NodeId, NodeId]] = None
    cost: Optional[float] = None
    links: Tuple[Tuple[NodeId, NodeId], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown churn event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        if self.kind == "cost":
            if self.node is None or self.cost is None:
                raise SimulationError("cost event needs node and cost")
            if self.cost < 0:
                raise SimulationError("declared transit costs are non-negative")
        elif self.kind in ("link-down", "link-up"):
            if self.link is None or len(self.link) != 2:
                raise SimulationError(f"{self.kind} event needs a link pair")
            if self.link[0] == self.link[1]:
                raise SimulationError("self-loop link in churn event")
        elif self.kind == "leave":
            if self.node is None:
                raise SimulationError("leave event needs a node")
        else:  # join
            if self.node is None or self.cost is None or not self.links:
                raise SimulationError("join event needs node, cost, and links")
            if self.cost < 0:
                raise SimulationError("declared transit costs are non-negative")
            for pair in self.links:
                if len(pair) != 2 or self.node not in pair:
                    raise SimulationError(
                        "every join link must contain the joining node"
                    )
                if pair[0] == pair[1]:
                    raise SimulationError("self-loop link in join event")

    def describe(self) -> str:
        """A compact deterministic label for telemetry and traces."""
        if self.kind == "cost":
            return f"cost:{self.node!r}={self.cost}"
        if self.kind in ("link-down", "link-up"):
            a, b = sorted(self.link, key=repr)  # type: ignore[arg-type]
            return f"{self.kind}:{a!r}-{b!r}"
        if self.kind == "leave":
            return f"leave:{self.node!r}"
        return f"join:{self.node!r}(+{len(self.links)} links)"


@dataclass(frozen=True)
class ChurnSchedule:
    """Events grouped into reconvergence epochs, applied in order."""

    epochs: Tuple[Tuple[ChurnEvent, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "epochs",
            tuple(tuple(events) for events in self.epochs),
        )

    def __len__(self) -> int:
        return len(self.epochs)

    @property
    def event_count(self) -> int:
        """Total number of events across all epochs."""
        return sum(len(events) for events in self.epochs)

    @classmethod
    def single(cls, *events: ChurnEvent) -> "ChurnSchedule":
        """A one-epoch schedule from explicit events."""
        return cls(epochs=(tuple(events),))


# ----------------------------------------------------------------------
# graph evolution
# ----------------------------------------------------------------------


def apply_churn_event(graph: ASGraph, event: ChurnEvent) -> ASGraph:
    """The post-event graph (validates the event against ``graph``)."""
    if event.kind == "cost":
        if event.node not in graph:
            raise SimulationError(f"cost event for unknown node {event.node!r}")
        return graph.with_costs({event.node: event.cost})
    if event.kind == "link-down":
        a, b = event.link  # type: ignore[misc]
        if not graph.has_edge(a, b):
            raise SimulationError(f"link-down on absent link {a!r}-{b!r}")
        key = frozenset((a, b))
        edges = [pair for pair in graph.edges if frozenset(pair) != key]
        return ASGraph(graph.costs, edges)
    if event.kind == "link-up":
        a, b = event.link  # type: ignore[misc]
        for endpoint in (a, b):
            if endpoint not in graph:
                raise SimulationError(
                    f"link-up endpoint {endpoint!r} is not in the graph"
                )
        if graph.has_edge(a, b):
            raise SimulationError(f"link-up on existing link {a!r}-{b!r}")
        return ASGraph(graph.costs, graph.edges + ((a, b),))
    if event.kind == "leave":
        if event.node not in graph:
            raise SimulationError(f"leave event for unknown node {event.node!r}")
        return graph.without_node(event.node)
    # join
    if event.node in graph:
        raise SimulationError(f"join event for existing node {event.node!r}")
    costs = graph.costs
    costs[event.node] = float(event.cost)  # type: ignore[arg-type]
    return ASGraph(costs, graph.edges + tuple(event.links))


def apply_churn_epoch(graph: ASGraph, events: Sequence[ChurnEvent]) -> ASGraph:
    """Fold one epoch's events over a graph, left to right."""
    for event in events:
        graph = apply_churn_event(graph, event)
    return graph


def evolved_graphs(graph: ASGraph, schedule: ChurnSchedule) -> Tuple[ASGraph, ...]:
    """The post-event graph after each epoch (same length as the schedule)."""
    out = []
    for events in schedule.epochs:
        graph = apply_churn_epoch(graph, events)
        out.append(graph)
    return tuple(out)


# ----------------------------------------------------------------------
# seeded schedule generation
# ----------------------------------------------------------------------


def _viable(graph: ASGraph, require: Optional[str]) -> bool:
    if len(graph) < 2:
        return False
    if require == "connected":
        return graph.is_connected()
    if require == "biconnected":
        return graph.is_biconnected()
    return True


#: Rejection-sampling budget per event slot in
#: :func:`random_churn_schedule`.
_DRAW_ATTEMPTS = 32


def random_churn_schedule(
    graph: ASGraph,
    rng,
    epochs: int = 2,
    events_per_epoch: int = 1,
    kinds: Sequence[str] = ("cost", "link-down", "link-up"),
    cost_range: Tuple[float, float] = (1.0, 10.0),
    require: Optional[str] = "connected",
    join_prefix: str = "hx",
    on_exhaustion: str = "raise",
    seed: Optional[int] = None,
) -> ChurnSchedule:
    """Draw a deterministic schedule keeping every epoch graph viable.

    ``rng`` is a seeded ``random.Random``; all sampling happens over
    repr-sorted views, so the schedule depends only on the seed and the
    graph, never on hash order.  Each drawn event is validated against
    the evolving graph with bounded rejection sampling.

    When an event slot exhausts its sampling budget — no requested kind
    can keep the graph viable here (the last safe link, the last spare
    node) — the default ``on_exhaustion="raise"`` raises a
    :class:`SimulationError` naming the seed, the event kinds tried,
    and the violated viability constraint, so an impossible
    constraint set fails loudly instead of silently under-delivering
    events.  ``on_exhaustion="skip"`` restores the lenient behaviour:
    the slot is dropped and small graphs yield smaller epochs.
    ``seed`` is only used to label the error (the ``rng`` object does
    not expose the seed it was built from).
    """
    for kind in kinds:
        if kind not in EVENT_KINDS:
            raise SimulationError(f"unknown churn event kind {kind!r}")
    if on_exhaustion not in ("raise", "skip"):
        raise SimulationError(
            f"unknown on_exhaustion policy {on_exhaustion!r}; "
            "expected 'raise' or 'skip'"
        )
    current = graph
    joined = 0
    epoch_specs = []
    for epoch in range(epochs):
        events = []
        for _ in range(events_per_epoch):
            event = None
            tried = set()
            for _attempt in range(_DRAW_ATTEMPTS):
                kind = kinds[rng.randrange(len(kinds))]
                tried.add(kind)
                candidate = _draw_event(
                    current, rng, kind, cost_range, f"{join_prefix}{joined}"
                )
                if candidate is None:
                    continue
                evolved = apply_churn_event(current, candidate)
                if not _viable(evolved, require):
                    continue
                event = candidate
                current = evolved
                break
            if event is None:
                if on_exhaustion == "skip":
                    continue
                seed_label = "unknown" if seed is None else repr(seed)
                raise SimulationError(
                    f"churn schedule draw exhausted "
                    f"{_DRAW_ATTEMPTS} attempts in epoch {epoch} "
                    f"(seed {seed_label}): no event of kind "
                    f"{sorted(tried)} keeps the "
                    f"{len(current)}-node graph "
                    f"{require or 'non-trivial'}; relax the kinds or "
                    "the viability constraint, or pass "
                    "on_exhaustion='skip' to drop the slot"
                )
            if event.kind == "join":
                joined += 1
            events.append(event)
        epoch_specs.append(tuple(events))
    return ChurnSchedule(epochs=tuple(epoch_specs))


def _draw_event(
    graph: ASGraph,
    rng,
    kind: str,
    cost_range: Tuple[float, float],
    join_id: NodeId,
) -> Optional[ChurnEvent]:
    nodes = graph.nodes
    if kind == "cost":
        node = nodes[rng.randrange(len(nodes))]
        return ChurnEvent(
            kind="cost", node=node, cost=round(rng.uniform(*cost_range), 3)
        )
    if kind == "link-down":
        edges = graph.edges
        if not edges:
            return None
        return ChurnEvent(kind="link-down", link=edges[rng.randrange(len(edges))])
    if kind == "link-up":
        absent = [
            (a, b)
            for i, a in enumerate(nodes)
            for b in nodes[i + 1 :]
            if not graph.has_edge(a, b)
        ]
        if not absent:
            return None
        return ChurnEvent(kind="link-up", link=absent[rng.randrange(len(absent))])
    if kind == "leave":
        if len(nodes) < 4:
            return None
        return ChurnEvent(kind="leave", node=nodes[rng.randrange(len(nodes))])
    # join: attach with two links (one if the graph is a single node)
    anchors = list(nodes)
    rng.shuffle(anchors)
    chosen = anchors[: min(2, len(anchors))]
    return ChurnEvent(
        kind="join",
        node=join_id,
        cost=round(rng.uniform(*cost_range), 3),
        links=tuple((join_id, anchor) for anchor in chosen),
    )
