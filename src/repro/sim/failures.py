"""The failure-model taxonomy, including rational manipulation.

Section 3 of the paper argues that *rational manipulation* deserves a
place in the classical failure taxonomy (failstop ... Byzantine): it is
currently classified as a subset of Byzantine behaviour, but rational
failures are predictable — a node deviates only to increase its own
utility — which opens design tools (incentives, partitioning,
catch-and-punish) that redundancy-based BFT does not exploit.

This module implements the taxonomy as *adapters*: wrappers installed
on a :class:`~repro.sim.node.ProtocolNode` via its inbound/outbound
filters.  The rational adapter is special: it does not act randomly but
delegates to a manipulation strategy with a utility target, defined in
:mod:`repro.faithful.manipulations` for the routing case study.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Optional

from .messages import Message
from .node import ProtocolNode


class FailureModel(enum.Enum):
    """The taxonomy of Section 3 (plus the correct baseline)."""

    #: Follows the suggested specification exactly.
    OBEDIENT = "obedient"
    #: Halts permanently at a known point; others can detect the halt.
    FAILSTOP = "failstop"
    #: Halts permanently at an arbitrary point, without announcement.
    CRASH = "crash"
    #: Loses some messages (send and/or receive omissions).
    OMISSION = "omission"
    #: Arbitrary behaviour, unconstrained by self-interest.
    BYZANTINE = "byzantine"
    #: Deviates exactly when deviation increases its own utility.
    RATIONAL = "rational"


class FailureAdapter:
    """Base adapter: installs behaviour-modifying filters on a node.

    Adapters chain with any filters the node already has (so a
    rational manipulation strategy can be combined with, say, an
    omission fault for the Section 5 discussion experiments).
    """

    model = FailureModel.OBEDIENT

    def __init__(self, node: ProtocolNode) -> None:
        self.node = node
        self._wrapped_outbound = node.outbound
        self._wrapped_inbound = node.inbound
        node.outbound = self.outbound  # type: ignore[method-assign]
        node.inbound = self.inbound  # type: ignore[method-assign]

    def outbound(self, message: Message) -> Optional[Message]:
        """Default: pass through to the node's previous filter."""
        return self._wrapped_outbound(message)

    def inbound(self, message: Message) -> Optional[Message]:
        """Default: pass through to the node's previous filter."""
        return self._wrapped_inbound(message)


class FailstopAdapter(FailureAdapter):
    """Node halts at a scheduled simulated time; silent afterwards."""

    model = FailureModel.FAILSTOP

    def __init__(self, node: ProtocolNode, fail_time: float) -> None:
        super().__init__(node)
        self.fail_time = fail_time

    @property
    def failed(self) -> bool:
        """True once the node's halt time has passed."""
        return self.node.sim.now >= self.fail_time

    def outbound(self, message: Message) -> Optional[Message]:
        """Silence all sends once the node has halted."""
        if self.failed:
            return None
        return self._wrapped_outbound(message)

    def inbound(self, message: Message) -> Optional[Message]:
        """Drop all deliveries once the node has halted."""
        if self.failed:
            return None
        return self._wrapped_inbound(message)


class CrashAdapter(FailstopAdapter):
    """Like failstop but the halt point is drawn at random, modelling a
    crash other nodes cannot anticipate."""

    model = FailureModel.CRASH

    def __init__(
        self, node: ProtocolNode, rng: random.Random, horizon: float = 100.0
    ) -> None:
        super().__init__(node, fail_time=rng.uniform(0.0, horizon))


class OmissionAdapter(FailureAdapter):
    """Drops each message independently with fixed probability."""

    model = FailureModel.OMISSION

    def __init__(
        self,
        node: ProtocolNode,
        rng: random.Random,
        send_drop_prob: float = 0.0,
        receive_drop_prob: float = 0.0,
    ) -> None:
        super().__init__(node)
        if not 0.0 <= send_drop_prob <= 1.0 or not 0.0 <= receive_drop_prob <= 1.0:
            raise ValueError("drop probabilities must lie in [0, 1]")
        self.rng = rng
        self.send_drop_prob = send_drop_prob
        self.receive_drop_prob = receive_drop_prob

    def outbound(self, message: Message) -> Optional[Message]:
        """Drop each send independently with the configured probability."""
        if self.rng.random() < self.send_drop_prob:
            return None
        return self._wrapped_outbound(message)

    def inbound(self, message: Message) -> Optional[Message]:
        """Drop each delivery independently with the configured probability."""
        if self.rng.random() < self.receive_drop_prob:
            return None
        return self._wrapped_inbound(message)


class ByzantineAdapter(FailureAdapter):
    """Applies an arbitrary mutator to outbound messages.

    The mutator may return the message unchanged, a tampered copy, or
    None to drop — capturing "arbitrary behaviour" without requiring a
    motive, in contrast to :class:`RationalAdapter`.
    """

    model = FailureModel.BYZANTINE

    def __init__(
        self,
        node: ProtocolNode,
        mutator: Callable[[Message], Optional[Message]],
    ) -> None:
        super().__init__(node)
        self.mutator = mutator

    def outbound(self, message: Message) -> Optional[Message]:
        """Apply the arbitrary mutator to every send."""
        mutated = self.mutator(message)
        if mutated is None:
            return None
        return self._wrapped_outbound(mutated)


class RationalAdapter(FailureAdapter):
    """Marks a node as rational and carries its manipulation strategy.

    The adapter itself adds no behaviour: rational deviations in the
    case study are implemented as strategy subclasses of the protocol
    node (see :mod:`repro.faithful.manipulations`), because a rational
    node rewrites its *algorithm*, not merely its channel.  The adapter
    exists so experiments can tag and enumerate which nodes are
    rational and what deviation they attempt.
    """

    model = FailureModel.RATIONAL

    def __init__(self, node: ProtocolNode, deviation_name: str) -> None:
        super().__init__(node)
        self.deviation_name = deviation_name
