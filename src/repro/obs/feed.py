"""The sweep telemetry feed: writer, status reduction, and following.

A sweep publishes its lifecycle to ``telemetry.jsonl`` inside the
artifact directory.  The protocol is *workers enqueue, the parent
serializes*: scenario workers capture their telemetry into an
in-memory ring (:func:`repro.experiments.runner.run_scenario_traced`)
and ship an aggregated counter block back with the result; only the
parent process ever writes the feed, so pooled and serial runs emit
record-equivalent feeds (same records per cell; only inter-cell order
and wall stamps differ).

Record vocabulary (``kind`` / meaning):

``sweep_start``
    Grid shape: total cells, pending vs reused, workers, sweep name.
``cell_start``
    A cell was dispatched (serial: immediately before it runs; pooled:
    when it is submitted to the pool).
``cell_finish`` / ``cell_error``
    A cell completed; carries the content key, scenario id, probe,
    ``wall_time``, and the merged telemetry counters captured in the
    worker (``KernelStats`` deltas, simulator ``MetricsRegistry``
    deltas).  Errors additionally carry ``error_class`` and the error
    message.
``cell_reused``
    A cell was satisfied from a ``--resume`` store without running.
``sweep_finish``
    Totals at the end of the run.

:func:`feed_status` reduces any prefix of a feed — including one cut
mid-record by a crash — to a :class:`FeedStatus`; rate and ETA are
computed from the wall stamps *in the records* (the consumer never
reads a clock, keeping it lint-clean outside the sink allowlist).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .events import EventBus, JsonlSink, TelemetryEvent, read_feed

KIND_SWEEP_START = "sweep_start"
KIND_SWEEP_FINISH = "sweep_finish"
KIND_CELL_START = "cell_start"
KIND_CELL_FINISH = "cell_finish"
KIND_CELL_ERROR = "cell_error"
KIND_CELL_REUSED = "cell_reused"

#: The feed file written beside the other sweep artifacts.
FEED_FILENAME = "telemetry.jsonl"


def feed_path(directory_or_file: str) -> str:
    """Resolve a CLI argument to a feed file path.

    Accepts either the feed file itself or an artifact directory
    containing ``telemetry.jsonl``.
    """
    if os.path.isdir(directory_or_file):
        return os.path.join(directory_or_file, FEED_FILENAME)
    return directory_or_file


class SweepFeed:
    """Parent-side writer of one sweep's ``telemetry.jsonl``.

    Owns a private :class:`~repro.obs.events.EventBus` (its own
    sequence numbering) with one JSONL sink attached, so feed records
    never interleave with library instrumentation on the default bus.
    """

    def __init__(self, directory: str, stamp_wall: bool = True) -> None:
        """Open (append) the feed inside ``directory``."""
        self.path = os.path.join(directory, FEED_FILENAME)
        self._bus = EventBus()
        self._sink = JsonlSink(self.path, stamp_wall=stamp_wall)
        self._bus.attach(self._sink)
        self._name = "sweep"

    def close(self) -> None:
        """Close the underlying sink."""
        self._bus.detach(self._sink)
        self._sink.close()

    def __enter__(self) -> "SweepFeed":
        """Context-manager support (closes on exit)."""
        return self

    def __exit__(self, *_exc) -> None:
        """Close the feed."""
        self.close()

    # -- record emission ----------------------------------------------

    def sweep_start(
        self,
        name: str,
        total: int,
        pending: int,
        reused: int,
        workers: int,
    ) -> None:
        """Record the grid shape at the start of a run."""
        self._name = name
        self._bus.emit(
            KIND_SWEEP_START,
            name,
            attrs={
                "total": total,
                "pending": pending,
                "reused": reused,
                "workers": workers,
            },
        )

    def cell_start(self, spec) -> None:
        """Record that one cell was dispatched."""
        self._bus.emit(
            KIND_CELL_START,
            spec.scenario_id(),
            attrs={"key": spec.content_key(), "probe": spec.probe},
        )

    def cell_result(self, result, counters: Optional[Dict[str, int]] = None) -> None:
        """Record one completed cell (finish or error, from its result)."""
        attrs: Dict[str, object] = {
            "key": result.spec.content_key(),
            "probe": result.spec.probe,
            "wall_time": result.wall_time,
            "counters": dict(counters or {}),
        }
        if result.ok:
            self._bus.emit(KIND_CELL_FINISH, result.scenario_id, attrs=attrs)
        else:
            error = result.error or ""
            attrs["error_class"] = error.split(":", 1)[0]
            attrs["error"] = error
            self._bus.emit(KIND_CELL_ERROR, result.scenario_id, attrs=attrs)

    def cell_reused(self, result) -> None:
        """Record a cell satisfied from a resume store."""
        self._bus.emit(
            KIND_CELL_REUSED,
            result.scenario_id,
            attrs={
                "key": result.spec.content_key(),
                "probe": result.spec.probe,
                "ok": result.ok,
            },
        )

    def sweep_finish(self, completed: int, failures: int) -> None:
        """Record the run's final totals (named after sweep_start)."""
        self._bus.emit(
            KIND_SWEEP_FINISH,
            self._name,
            attrs={"completed": completed, "failures": failures},
        )


# ---------------------------------------------------------------------------
# consumption: status reduction and rendering
# ---------------------------------------------------------------------------


@dataclass
class FeedStatus:
    """Everything ``repro status`` reports, reduced from one feed."""

    name: str = ""
    #: Total cells of the grid (0 when no sweep_start record survived).
    total: int = 0
    reused: int = 0
    started: int = 0
    finished: int = 0
    errors: int = 0
    workers: int = 1
    #: True once a sweep_finish record is present.
    complete: bool = False
    #: Sum of per-cell wall_time over completed cells.
    scenario_time: float = 0.0
    #: Wall span covered by the feed's record stamps (0 if unstamped).
    elapsed: float = 0.0
    #: Completed cells (finish+error) per wall second; 0 if unknown.
    rate: float = 0.0
    #: Estimated seconds to completion; None when the rate is unknown.
    eta: Optional[float] = None
    #: error_class -> count over cell_error records.
    error_classes: Dict[str, int] = field(default_factory=dict)
    #: probe -> error count over cell_error records.
    probe_errors: Dict[str, int] = field(default_factory=dict)
    #: (content key, error_class) per cell_error record, feed order.
    failed_cells: List[Tuple[str, str]] = field(default_factory=list)
    #: Merged counter totals over every completed cell.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Cells done by any means (finished, errored, or reused)."""
        return self.finished + self.errors + self.reused

    @property
    def remaining(self) -> int:
        """Cells not yet completed (0 when total is unknown)."""
        return max(0, self.total - self.completed)

    @property
    def in_flight(self) -> int:
        """Dispatched cells with no completion record yet."""
        return max(0, self.started - self.finished - self.errors)

    def to_json_obj(self) -> Dict[str, object]:
        """JSON-ready view (``repro status --format json``)."""
        return {
            "name": self.name,
            "total": self.total,
            "reused": self.reused,
            "started": self.started,
            "finished": self.finished,
            "errors": self.errors,
            "completed": self.completed,
            "remaining": self.remaining,
            "in_flight": self.in_flight,
            "workers": self.workers,
            "complete": self.complete,
            "scenario_time": self.scenario_time,
            "elapsed": self.elapsed,
            "rate": self.rate,
            "eta": self.eta,
            "error_classes": dict(sorted(self.error_classes.items())),
            "probe_errors": dict(sorted(self.probe_errors.items())),
            "failed_cells": [list(pair) for pair in self.failed_cells],
            "counters": dict(sorted(self.counters.items())),
        }


def feed_status(events: Sequence[TelemetryEvent]) -> FeedStatus:
    """Reduce feed records (any prefix of a run) to a :class:`FeedStatus`.

    Robust to mid-run truncation: counts only reflect records that
    fully made it to disk, which is exactly the "at most the in-flight
    cells are invisible" contract of the JSONL sink.
    """
    status = FeedStatus()
    stamps: List[float] = []
    for event in events:
        if event.wall_time is not None:
            stamps.append(event.wall_time)
        attrs = event.attrs
        if event.kind == KIND_SWEEP_START:
            status.name = event.name
            status.total = int(attrs.get("total", 0))  # type: ignore[arg-type]
            status.workers = int(attrs.get("workers", 1))  # type: ignore[arg-type]
        elif event.kind == KIND_CELL_START:
            status.started += 1
        elif event.kind == KIND_CELL_REUSED:
            # Counted from the records themselves (not sweep_start's
            # declared total) so a truncated prefix never over-reports.
            status.reused += 1
        elif event.kind in (KIND_CELL_FINISH, KIND_CELL_ERROR):
            if event.kind == KIND_CELL_FINISH:
                status.finished += 1
            else:
                status.errors += 1
                error_class = str(attrs.get("error_class", "")) or "unknown"
                status.error_classes[error_class] = (
                    status.error_classes.get(error_class, 0) + 1
                )
                probe = str(attrs.get("probe", "")) or "unknown"
                status.probe_errors[probe] = (
                    status.probe_errors.get(probe, 0) + 1
                )
                status.failed_cells.append(
                    (str(attrs.get("key", "")), error_class)
                )
            status.scenario_time += float(attrs.get("wall_time", 0.0))  # type: ignore[arg-type]
            counters = attrs.get("counters")
            if isinstance(counters, dict):
                for key, value in counters.items():
                    status.counters[str(key)] = status.counters.get(
                        str(key), 0
                    ) + int(value)  # type: ignore[arg-type]
        elif event.kind == KIND_SWEEP_FINISH:
            status.complete = True
    # Rate and ETA need at least two wall stamps a positive interval
    # apart: a just-started feed (one record) or one killed within the
    # stamp resolution has no measurable elapsed time, and dividing by
    # it would report a nonsense rate.  Such feeds keep rate == 0.0 and
    # eta is None, which renders as "n/a".
    if len(stamps) >= 2:
        status.elapsed = max(stamps) - min(stamps)
    done = status.finished + status.errors
    if done and status.elapsed > 0:
        status.rate = done / status.elapsed
        if status.total:
            status.eta = status.remaining / status.rate
    return status


def render_status(status: FeedStatus, top_counters: int = 8) -> str:
    """Human-readable multi-line status block."""
    lines = [
        f"sweep '{status.name or '?'}': "
        f"{status.completed}/{status.total or '?'} cells done "
        f"({status.finished} ok, {status.errors} errors, "
        f"{status.reused} reused), {status.in_flight} in flight, "
        f"{status.workers} worker(s)"
        + (", finished" if status.complete else ", running"),
    ]
    if status.rate:
        lines.append(
            f"rate:  {status.rate:.2f} cells/s over {status.elapsed:.1f}s "
            f"({status.scenario_time:.2f}s scenario time)"
        )
        if status.eta is not None and not status.complete:
            lines.append(f"eta:   ~{status.eta:.0f}s for {status.remaining} cells")
    elif not status.complete:
        # Just started or killed instantly: no measurable interval yet.
        lines.append("rate:  n/a (fewer than two timestamped records)")
        if status.remaining:
            lines.append(f"eta:   n/a for {status.remaining} cells")
    if status.error_classes:
        parts = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(status.error_classes.items())
        )
        lines.append(f"error classes: {parts}")
    if status.probe_errors:
        parts = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(status.probe_errors.items())
        )
        lines.append(f"errors by probe: {parts}")
    if status.failed_cells:
        shown = status.failed_cells[:top_counters]
        lines.append("failed cells:")
        for key, error_class in shown:
            lines.append(f"  [{error_class}] {key}")
        if len(status.failed_cells) > len(shown):
            lines.append(
                f"  ... and {len(status.failed_cells) - len(shown)} more"
            )
    churn_epochs = status.counters.get("churn.epochs", 0) + status.counters.get(
        "churn.checked_epochs", 0
    )
    if churn_epochs:
        lines.append(
            f"churn: {churn_epochs} reconvergence epoch(s), "
            f"{status.counters.get('churn.events', 0)} events, "
            f"{status.counters.get('churn.reconvergence_messages', 0)} "
            f"reconvergence messages"
        )
    flows_settled = status.counters.get("bank.flows_settled", 0)
    net_transfers = status.counters.get("bank.net_transfers", 0)
    if flows_settled or net_transfers:
        lines.append(
            f"settlement: {flows_settled} flow(s) settled into "
            f"{net_transfers} net transfer(s) "
            f"({status.counters.get('bank.transfer_records', 0)} per-flow "
            f"records), "
            f"{status.counters.get('bank.forced_settlements', 0)} forced, "
            f"{status.counters.get('bank.deposit_draws', 0)} deposit draw(s)"
        )
    if status.counters:
        ranked = sorted(
            status.counters.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_counters]
        lines.append("top counters:")
        for name, value in ranked:
            lines.append(f"  {name:<40} {value}")
    return "\n".join(lines)


def render_event(event: TelemetryEvent) -> str:
    """One human-readable feed line (``repro tail``)."""
    bits = [f"#{event.seq:<5}", f"{event.kind:<12}", event.name]
    if event.sim_time is not None:
        bits.append(f"t={event.sim_time:g}")
    for key in ("key", "probe", "error_class", "wall_time"):
        value = event.attrs.get(key)
        if value is not None:
            if isinstance(value, float):
                bits.append(f"{key}={value:.3f}")
            else:
                bits.append(f"{key}={value}")
    extras = {
        k: v
        for k, v in event.attrs.items()
        if k not in ("key", "probe", "error_class", "wall_time", "counters")
    }
    if extras:
        bits.append(
            " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
        )
    return "  ".join(str(b) for b in bits)


class FeedFollower:
    """Incremental reader of a live feed (``repro tail --follow``).

    Re-reads the file on each :meth:`poll` and yields only records not
    seen before, keyed by position.  A torn final line is simply not
    yielded yet; it is picked up once the writer completes it.
    """

    def __init__(self, path: str) -> None:
        """Follow the feed at ``path`` (which may not exist yet)."""
        self.path = path
        self._seen = 0

    def poll(self) -> List[TelemetryEvent]:
        """Records appended since the previous poll."""
        events = read_feed(self.path)
        fresh = events[self._seen:]
        self._seen = len(events)
        return fresh

    def follow(
        self, poll_interval: float = 0.5, max_polls: Optional[int] = None
    ) -> Iterator[TelemetryEvent]:
        """Yield records as they appear, sleeping between polls.

        ``max_polls`` bounds the loop for tests; ``None`` follows until
        the consumer stops iterating (e.g. KeyboardInterrupt).
        """
        polls = 0
        while max_polls is None or polls < max_polls:
            for event in self.poll():
                yield event
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return
            time.sleep(poll_interval)
