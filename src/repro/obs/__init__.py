"""Deterministic-safe observability: events, spans, and the sweep feed.

The telemetry subsystem spans the simulator, replay kernel clients,
bank, and sweep runner without ever touching canonical outputs: sweep
artifacts are byte-identical with telemetry on or off (CI-enforced),
wall-clock reads are confined to the JSONL sink boundary, and every
instrumentation site is a guarded no-op when no sink is attached.  See
docs/observability.md for the event schema and sink contract.
"""

from .events import (
    BUS,
    KIND_COUNTERS,
    KIND_MARKER,
    KIND_SPAN_END,
    KIND_SPAN_START,
    EventBus,
    JsonlSink,
    MemorySink,
    NullSink,
    TelemetryEvent,
    read_feed,
)
from .feed import (
    FEED_FILENAME,
    KIND_CELL_ERROR,
    KIND_CELL_FINISH,
    KIND_CELL_REUSED,
    KIND_CELL_START,
    KIND_SWEEP_FINISH,
    KIND_SWEEP_START,
    FeedFollower,
    FeedStatus,
    SweepFeed,
    feed_path,
    feed_status,
    render_event,
    render_status,
)
from .trace import (
    NOOP_SPAN,
    Span,
    aggregate_counters,
    emit_counters,
    emit_marker,
    span,
)

__all__ = [
    "BUS",
    "FEED_FILENAME",
    "KIND_CELL_ERROR",
    "KIND_CELL_FINISH",
    "KIND_CELL_REUSED",
    "KIND_CELL_START",
    "KIND_COUNTERS",
    "KIND_MARKER",
    "KIND_SPAN_END",
    "KIND_SPAN_START",
    "KIND_SWEEP_FINISH",
    "KIND_SWEEP_START",
    "NOOP_SPAN",
    "EventBus",
    "FeedFollower",
    "FeedStatus",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Span",
    "SweepFeed",
    "TelemetryEvent",
    "aggregate_counters",
    "emit_counters",
    "emit_marker",
    "feed_path",
    "feed_status",
    "read_feed",
    "render_event",
    "render_status",
    "span",
]
