"""Structured telemetry events, the event bus, and pluggable sinks.

The observability substrate for everything the paper's overhead story
measures live: typed :class:`TelemetryEvent` records flow through an
:class:`EventBus` into zero or more sinks.  Three sinks cover the
layering of probe -> broker -> consumer (the CyberPower-PDU exemplar's
decoupling, ROADMAP "live telemetry"):

:class:`NullSink`
    Drops everything (used to measure the enabled-path floor).
:class:`MemorySink`
    A bounded in-memory ring; what sweep workers capture scenario
    telemetry into before shipping it back to the parent.
:class:`JsonlSink`
    An append-only ``telemetry.jsonl`` feed with the same
    crash-tolerance contract as the sweep ``cells.jsonl`` store: one
    newline-terminated JSON document per event, a torn tail is
    truncated before appending and tolerated (dropped) on read, and
    mid-file corruption fails loudly.

Determinism contract
--------------------
Telemetry must be *invisible* to canonical outputs.  Two rules enforce
that here:

* **Disabled is free(ish).**  ``BUS.enabled`` is a plain attribute;
  every instrumentation site guards on it (or calls the no-op span of
  :mod:`repro.obs.trace`), so with no sink attached the overhead is one
  attribute read.
* **Wall time is quarantined.**  Events carry logical sim-time; the
  only wall-clock read in the subsystem is :class:`JsonlSink` stamping
  ``wall_time`` as a record crosses the feed boundary (allowlisted in
  the determinism lint, see docs/determinism.md).  In-memory capture is
  wall-time-free, so worker-captured telemetry is deterministic and two
  runs of one scenario capture identical events.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional

from ..errors import TelemetryError

# Core event kinds.  The vocabulary is open (sweep lifecycle kinds live
# in repro.obs.feed), but these four are what the tracing layer emits.
KIND_SPAN_START = "span_start"
KIND_SPAN_END = "span_end"
KIND_COUNTERS = "counters"
KIND_MARKER = "marker"

#: Default ring capacity of a :class:`MemorySink` (bounds worker-side
#: capture of chatty instrumentation on big cells).
DEFAULT_RING = 65536


@dataclass
class TelemetryEvent:
    """One structured telemetry record.

    ``sim_time`` is logical (simulated) time and may be ``None`` for
    events outside any simulation (sweep lifecycle).  ``wall_time`` is
    quarantined: ``None`` everywhere except records stamped by a
    :class:`JsonlSink` at the feed boundary.  ``attrs`` is a flat
    JSON-representable mapping; counter events hold int deltas there.
    """

    kind: str
    name: str
    seq: int
    sim_time: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    wall_time: Optional[float] = None

    def to_json_obj(self) -> Dict[str, object]:
        """JSON-ready dict (one feed line)."""
        obj: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
            "sim_time": self.sim_time,
            "attrs": dict(self.attrs),
        }
        if self.wall_time is not None:
            obj["wall_time"] = self.wall_time
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "TelemetryEvent":
        """Rebuild an event from a parsed feed line."""
        try:
            return cls(
                kind=str(obj["kind"]),
                name=str(obj["name"]),
                seq=int(obj["seq"]),  # type: ignore[arg-type]
                sim_time=(
                    None if obj.get("sim_time") is None
                    else float(obj["sim_time"])  # type: ignore[arg-type]
                ),
                attrs=dict(obj.get("attrs") or {}),  # type: ignore[arg-type]
                wall_time=(
                    None if obj.get("wall_time") is None
                    else float(obj["wall_time"])  # type: ignore[arg-type]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed telemetry record: {exc}") from exc


class NullSink:
    """Swallows events (the enabled-path floor for overhead tests)."""

    def emit(self, event: TelemetryEvent) -> None:
        """Drop the event."""

    def close(self) -> None:
        """Nothing to release."""


class MemorySink:
    """Bounded in-memory ring of events (deterministic capture).

    The ring drops the *oldest* events on overflow, so a bounded sink
    on an unbounded run keeps the most recent window — and a worker
    capturing one scenario never grows without bound.
    """

    def __init__(self, maxlen: Optional[int] = DEFAULT_RING) -> None:
        """Create a ring holding at most ``maxlen`` events (None = unbounded)."""
        self._ring: deque = deque(maxlen=maxlen)
        self.dropped = 0

    def emit(self, event: TelemetryEvent) -> None:
        """Append, evicting the oldest event when the ring is full."""
        if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> List[TelemetryEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._ring)

    def close(self) -> None:
        """Nothing to release (events stay readable)."""


class JsonlSink:
    """Append-only JSONL feed with the ``cells.jsonl`` crash contract.

    Every emit is one ``write()`` of a newline-terminated JSON document
    followed by a flush, so a kill truncates at most the final line.
    Opening for append first truncates a torn tail left by a previous
    kill (gluing a record onto a fragment would turn tolerated
    end-of-file truncation into fatal mid-file corruption).

    ``stamp_wall=True`` (the default) stamps ``wall_time`` on each
    record as it crosses into the feed — the one sanctioned wall-clock
    read of the telemetry subsystem; see docs/observability.md.
    """

    def __init__(self, path: str, stamp_wall: bool = True) -> None:
        """Open (creating) the feed file at ``path``."""
        self.path = path
        self.stamp_wall = stamp_wall
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        _truncate_torn_tail(path)
        self._handle = open(path, "a")

    def emit(self, event: TelemetryEvent) -> None:
        """Serialize one record to the feed, stamping wall time."""
        if self.stamp_wall:
            event = replace(event, wall_time=time.time())
        self._handle.write(
            json.dumps(
                event.to_json_obj(), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()


def _truncate_torn_tail(path: str) -> None:
    """Drop a partial (newline-less) final line left by a kill."""
    if not os.path.exists(path):
        return
    with open(path, "rb+") as tail:
        tail.seek(0, os.SEEK_END)
        size = tail.tell()
        if not size:
            return
        tail.seek(size - 1)
        if tail.read(1) == b"\n":
            return
        tail.seek(0)
        keep = tail.read().rfind(b"\n") + 1
        tail.truncate(keep)


def read_feed(path: str) -> List[TelemetryEvent]:
    """Parse a (possibly live, possibly truncated) JSONL feed.

    A missing file is an empty feed.  A final line that does not parse
    is the footprint of an in-flight append (or a kill mid-write) and
    is dropped; a bad line anywhere else means corruption and raises
    :class:`~repro.errors.TelemetryError`.
    """
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        lines = handle.read().splitlines()
    events: List[TelemetryEvent] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn in-flight append; the record is not lost, just late
            raise TelemetryError(
                f"{path}:{number}: corrupt telemetry record"
            ) from None
        events.append(TelemetryEvent.from_json_obj(obj))
    return events


class EventBus:
    """Fans events out to attached sinks; a no-op with none attached.

    ``enabled`` is a plain bool attribute kept in sync with the sink
    list, so hot instrumentation sites pay one attribute read when
    telemetry is off.  ``verbose`` additionally gates per-simulator-
    event dispatch spans (off even when a sink is attached — they are
    voluminous and most consumers only need batch/phase granularity).
    """

    __slots__ = ("_sinks", "enabled", "verbose", "_seq")

    def __init__(self) -> None:
        """Start disabled, with no sinks and sequence zero."""
        self._sinks: List = []
        self.enabled = False
        self.verbose = False
        self._seq = 0

    def attach(self, sink) -> object:
        """Attach a sink (enabling the bus) and return it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink) -> None:
        """Remove a sink; the bus disables when none remain."""
        self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    @property
    def sinks(self) -> List:
        """Snapshot of the attached sinks."""
        return list(self._sinks)

    def emit(
        self,
        kind: str,
        name: str,
        sim_time: Optional[float] = None,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Optional[TelemetryEvent]:
        """Build and fan out one event; returns it (None when disabled)."""
        if not self.enabled:
            return None
        self._seq += 1
        event = TelemetryEvent(
            kind=kind,
            name=name,
            seq=self._seq,
            sim_time=sim_time,
            attrs=dict(attrs) if attrs else {},
        )
        for sink in self._sinks:
            sink.emit(event)
        return event

    @contextmanager
    def capture(
        self, maxlen: Optional[int] = DEFAULT_RING
    ) -> Iterator[MemorySink]:
        """Attach a :class:`MemorySink` for the duration of a block.

        Nested captures compose (each sees the events emitted while it
        is attached); the sink is always detached on exit, restoring
        the previous enabled state.
        """
        sink = MemorySink(maxlen=maxlen)
        self.attach(sink)
        try:
            yield sink
        finally:
            self.detach(sink)


#: The process-wide default bus instrumented library code emits into.
#: Disabled (sink-less) unless a caller attaches a sink, so importing
#: the library never starts recording anything.
BUS = EventBus()
