"""Tracing spans and counter emission over the telemetry bus.

The span API is built for hot paths that are almost always *not* being
observed: ``span(...)`` returns a shared no-op context manager when the
bus has no sinks, so the disabled cost is one function call, one
attribute read, and the ``with`` protocol on a singleton — measured in
``benchmarks/test_bench_overhead.py`` and required to be within noise
on a 64-node convergence run.

A live span emits a ``span_start`` record on entry and a ``span_end``
on exit; the end record's ``attrs["span"]`` holds the start record's
sequence number so consumers can pair them, and attrs added with
:meth:`Span.note` during the block ride on the end record.  Spans carry
logical sim-time only; wall time enters solely at the JSONL feed
boundary (see :mod:`repro.obs.events`).
"""

from __future__ import annotations

from typing import Mapping, Optional

from .events import (
    BUS,
    KIND_COUNTERS,
    KIND_MARKER,
    KIND_SPAN_END,
    KIND_SPAN_START,
    EventBus,
)


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """Enter without emitting."""
        return self

    def __exit__(self, *_exc) -> None:
        """Exit without emitting (exceptions propagate)."""

    def note(self, **_attrs: object) -> None:
        """Discard attrs."""


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span bound to a bus; use via :func:`span`."""

    __slots__ = ("_bus", "name", "sim_time", "_attrs", "start_seq")

    def __init__(
        self,
        bus: EventBus,
        name: str,
        sim_time: Optional[float],
        attrs: Mapping[str, object],
    ) -> None:
        """Bind the span; nothing is emitted until ``__enter__``."""
        self._bus = bus
        self.name = name
        self.sim_time = sim_time
        self._attrs = dict(attrs)
        self.start_seq: Optional[int] = None

    def __enter__(self) -> "Span":
        """Emit the ``span_start`` record."""
        event = self._bus.emit(
            KIND_SPAN_START, self.name, sim_time=self.sim_time,
            attrs=self._attrs,
        )
        if event is not None:
            self.start_seq = event.seq
            self._attrs = {"span": event.seq}
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        """Emit the ``span_end`` record (noting an in-flight exception)."""
        if exc_type is not None:
            self._attrs["exception"] = exc_type.__name__
        self._bus.emit(
            KIND_SPAN_END, self.name, sim_time=self.sim_time,
            attrs=self._attrs,
        )

    def note(self, **attrs: object) -> None:
        """Add attrs to be carried on the ``span_end`` record.

        ``sim_time=`` is special-cased: it moves the end record's
        logical timestamp (spans often close later in simulated time
        than they opened).
        """
        end_time = attrs.pop("sim_time", None)
        if end_time is not None:
            self.sim_time = float(end_time)  # type: ignore[arg-type]
        self._attrs.update(attrs)


def span(
    name: str,
    sim_time: Optional[float] = None,
    bus: Optional[EventBus] = None,
    **attrs: object,
):
    """A context-manager span, or the shared no-op when unobserved."""
    target = bus if bus is not None else BUS
    if not target.enabled:
        return NOOP_SPAN
    return Span(target, name, sim_time, attrs)


def emit_counters(
    name: str,
    counters: Mapping[str, object],
    sim_time: Optional[float] = None,
    bus: Optional[EventBus] = None,
) -> None:
    """Emit one counter-delta record (a no-op when unobserved).

    ``counters`` maps counter key to an *increment* since the last
    emission for ``name`` — deltas, not cumulative values, so
    consumers (and the sweep feed's per-cell aggregation) can simply
    sum records.
    """
    target = bus if bus is not None else BUS
    if not target.enabled:
        return
    target.emit(KIND_COUNTERS, name, sim_time=sim_time, attrs=dict(counters))


def emit_marker(
    name: str,
    sim_time: Optional[float] = None,
    bus: Optional[EventBus] = None,
    **attrs: object,
) -> None:
    """Emit one lifecycle marker (phase/epoch boundary; no-op unobserved)."""
    target = bus if bus is not None else BUS
    if not target.enabled:
        return
    target.emit(KIND_MARKER, name, sim_time=sim_time, attrs=attrs)


def aggregate_counters(events) -> dict:
    """Sum captured counter records into ``{"<name>.<key>": total}``.

    Only ``counters`` records contribute, and only their numeric attrs
    (instrumentation may decorate records with labels); since every
    emission is a delta, plain summation is exact.
    """
    totals: dict = {}
    for event in events:
        if event.kind != KIND_COUNTERS:
            continue
        for key, value in event.attrs.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            slot = f"{event.name}.{key}"
            totals[slot] = totals.get(slot, 0) + int(value)
    return totals
