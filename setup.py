"""Setup shim enabling legacy editable installs in offline environments
where the `wheel` package (required for PEP 660 editable installs) is
unavailable."""

from setuptools import setup

setup()
